//! The sequential Rete runtime: memories, node activations, and the
//! [`ops5::Matcher`] implementation.
//!
//! Activations are processed from an explicit FIFO task queue rather
//! than by recursion. This makes the unit of work — one node activation —
//! explicit and identical to what the paper's parallel implementation
//! schedules onto processors, and it gives the trace builder natural
//! parent/child dependency edges.

use std::collections::hash_map::Entry;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use ops5::{Change, Error, Instantiation, MatchDelta, Matcher, Program, Wme, WmeId, WorkingMemory};

use ops5::{FxHashMap, PredOp, SymbolId, Value};
use psm_obs::{FlightKind, NodeDelta, Obs, ProfileKind};

use crate::bucket::Bucket;
use crate::network::{CompileOptions, JoinTest, Network, NodeId, NodeKind};
use crate::profile::MatchProfile;
use crate::stats::MatchStats;
use crate::token::{Sign, Token};
use crate::trace::{ActivationKind, Trace, TraceBuilder};

/// How alpha and beta memories are organized.
///
/// The 1986 OPS5 interpreters used linear lists; Gupta's parallel design
/// hashed memories so concurrent activations rarely touch the same
/// bucket. `Hashed` indexes each alpha memory by `(attribute, value)`
/// and each beta memory by the `(token position, attribute)` pairs its
/// downstream equality joins probe, so an activation whose first join
/// test is an equality probes one bucket instead of scanning the whole
/// memory. Hashed is the production default; `Linear` survives as the
/// memory-organization ablation of DESIGN.md §6 (what the paper-era
/// captured traces model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemoryStrategy {
    /// Linear lists (paper-era ablation baseline).
    Linear,
    /// `(attribute, value)`-indexed alpha and beta memories (default).
    #[default]
    Hashed,
}

/// Mutable state of one beta node.
#[derive(Debug, Clone)]
pub(crate) enum NodeState {
    /// Beta memory: resident tokens, plus — under
    /// [`MemoryStrategy::Hashed`] — per-`(token position, attribute)`
    /// value buckets used by downstream equality joins.
    ///
    /// `keys` holds the index-key values of each token *captured at
    /// insert time*, flattened: the chunk
    /// `keys[i * k .. (i + 1) * k]` (where `k` is this node's
    /// `mem_keys` count) belongs to `tokens[i]`. The flat layout keeps
    /// inserts allocation-free — `k` is fixed per node, so no per-token
    /// boxed slice is needed. Retractions remove bucket entries through
    /// these captured values rather than re-resolving them from the
    /// working memory, so a minus arriving when the caller's WM view
    /// has already dropped a referenced WME still finds (and empties)
    /// the right bucket. Under [`MemoryStrategy::Linear`] both `keys`
    /// and `index` stay empty.
    Mem {
        tokens: Vec<Token>,
        keys: Vec<Option<Value>>,
        index: FxHashMap<(usize, SymbolId, Value), Bucket<Token>>,
    },
    /// Negative node: tokens with their right-match counts.
    Neg(Vec<NegEntry>),
    /// Join and terminal nodes carry no state.
    Stateless,
}

#[derive(Debug, Clone)]
pub(crate) struct NegEntry {
    pub(crate) token: Token,
    pub(crate) count: u32,
}

/// A pending node activation.
#[derive(Debug)]
struct Task {
    node: NodeId,
    payload: Payload,
    sign: Sign,
    /// Trace id of the spawning activation.
    parent: Option<u32>,
}

#[derive(Debug)]
enum Payload {
    /// Right activation: a WME arriving from an alpha memory.
    Right(WmeId),
    /// Left activation: a token arriving from upstream.
    Left(Token),
}

/// Reusable per-change scratch buffers. Taken out of the matcher at the
/// start of each change and put back (drained, capacity kept) at the
/// end, so steady-state change processing allocates nothing for queue
/// or alpha-match bookkeeping.
#[derive(Debug, Default)]
struct Scratch {
    queue: VecDeque<Task>,
    deferred: Vec<Task>,
    alphas: Vec<crate::alpha::AlphaId>,
}

/// The sequential Rete matcher.
///
/// This is the paper's "best known uniprocessor implementation" against
/// which *true speed-up* is defined (Section 6, footnote 2).
#[derive(Debug)]
pub struct ReteMatcher {
    network: Arc<Network>,
    pub(crate) alpha_mems: Vec<Vec<WmeId>>,
    /// Per-alpha `(attr, value)` buckets, maintained only under
    /// [`MemoryStrategy::Hashed`].
    pub(crate) alpha_index: Vec<FxHashMap<(SymbolId, Value), Bucket<WmeId>>>,
    /// For each alpha memory, the attributes its successor joins
    /// actually probe by (the `own_attr` of each successor's first
    /// equality test). Only these attributes are indexed — maintaining
    /// buckets for every attribute of every WME costs more than the
    /// probes it could ever save.
    alpha_keys: Vec<Vec<SymbolId>>,
    /// For each beta memory, the `(token position, attribute)` keys its
    /// downstream equality joins probe by (empty for other node kinds).
    pub(crate) mem_keys: Vec<Vec<(usize, SymbolId)>>,
    pub(crate) memory: MemoryStrategy,
    pub(crate) states: Vec<NodeState>,
    pub(crate) stats: MatchStats,
    tracer: Option<TraceBuilder>,
    /// Per-node / per-kind activation timing; `None` (free) unless
    /// [`ReteMatcher::enable_profiling`] was called.
    profile: Option<Box<MatchProfile>>,
    /// Flight-recorder sink; see [`ReteMatcher::attach_obs`].
    obs: Option<Arc<Obs>>,
    /// Matcher-local per-node profile accumulators, one per network
    /// node, flushed into `obs.profile` at the end of each [`Matcher`]
    /// call. Empty unless the attached `Obs` has profile capacity, so
    /// `is_empty` doubles as the hot-path enabled check. Activations
    /// accumulate with plain adds here instead of paying one atomic
    /// RMW per counter per activation.
    prof_local: Vec<(ProfileKind, NodeDelta)>,
    /// Nodes with unflushed deltas (`tokens_in > 0`), so the flush
    /// walks only touched slots, not the whole network.
    prof_touched: Vec<u32>,
    /// Debug write-set sanitizer; see [`ReteMatcher::attach_sanitizer`].
    sanitizer: Option<Arc<ops5::effects::WriteSanitizer>>,
    /// Reusable per-change buffers; see [`Scratch`].
    scratch: Scratch,
    /// `stats.phantom_removes` already published to the attached obs
    /// counter, so each flush adds only the delta.
    phantom_published: u64,
}

impl ReteMatcher {
    /// Compiles `program` and builds a matcher (sharing on).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Semantic`] for LHS constructs the compiler
    /// rejects (predicate on a never-bound variable).
    pub fn compile(program: &Program) -> Result<Self, Error> {
        Ok(Self::from_network(Arc::new(Network::compile(program)?)))
    }

    /// Compiles with explicit options.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Semantic`] as for [`ReteMatcher::compile`].
    pub fn compile_with(program: &Program, options: CompileOptions) -> Result<Self, Error> {
        Ok(Self::from_network(Arc::new(Network::compile_with(
            program, options,
        )?)))
    }

    /// Compiles with hashed memories — the default; kept as an explicit
    /// spelling for ablation drivers (see [`MemoryStrategy`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Semantic`] as for [`ReteMatcher::compile`].
    pub fn compile_hashed(program: &Program) -> Result<Self, Error> {
        let mut m = Self::compile(program)?;
        m.memory = MemoryStrategy::Hashed;
        Ok(m)
    }

    /// Compiles with linear (unindexed) memories — the paper-era
    /// ablation baseline (see [`MemoryStrategy`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Semantic`] as for [`ReteMatcher::compile`].
    pub fn compile_linear(program: &Program) -> Result<Self, Error> {
        let mut m = Self::compile(program)?;
        m.memory = MemoryStrategy::Linear;
        Ok(m)
    }

    /// The memory organization in use.
    pub fn memory_strategy(&self) -> MemoryStrategy {
        self.memory
    }

    /// Builds a matcher over an already-compiled network.
    pub fn from_network(network: Arc<Network>) -> Self {
        // Negative nodes reachable from the dummy top node through a
        // chain of leading negatives hold the top token from the start
        // (their right memories begin empty, so it passes).
        let mut top_reaches = vec![false; network.nodes.len()];
        // Nodes are created parents-before-children, so one forward pass
        // settles the chain.
        for (i, spec) in network.nodes.iter().enumerate() {
            if spec.kind == NodeKind::Negative {
                top_reaches[i] = match spec.left {
                    None => true,
                    Some(left) => top_reaches[left.index()],
                };
            }
        }
        let states = network
            .nodes
            .iter()
            .enumerate()
            .map(|(i, spec)| match spec.kind {
                NodeKind::BetaMemory => NodeState::Mem {
                    tokens: Vec::new(),
                    keys: Vec::new(),
                    index: FxHashMap::default(),
                },
                NodeKind::Negative => NodeState::Neg(if top_reaches[i] {
                    vec![NegEntry {
                        token: Token::top(),
                        count: 0,
                    }]
                } else {
                    Vec::new()
                }),
                NodeKind::Join | NodeKind::Terminal => NodeState::Stateless,
            })
            .collect();
        // Which (token position, attribute) keys each beta memory must
        // index for its downstream equality joins.
        let mem_keys = network
            .nodes
            .iter()
            .map(|spec| {
                if spec.kind != NodeKind::BetaMemory {
                    return Vec::new();
                }
                let mut keys: Vec<(usize, SymbolId)> = spec
                    .children
                    .iter()
                    .filter_map(|&child| {
                        network
                            .node(child)
                            .tests
                            .iter()
                            .find(|t| t.op == PredOp::Eq)
                            .map(|t| (t.token_pos, t.token_attr))
                    })
                    .collect();
                keys.sort_unstable();
                keys.dedup();
                keys
            })
            .collect();
        // Which attributes each alpha memory must index for the
        // equality probes of its successor two-input nodes.
        let mut alpha_keys: Vec<Vec<SymbolId>> = vec![Vec::new(); network.alpha.len()];
        for spec in &network.nodes {
            if let (Some(alpha), Some(t)) =
                (spec.alpha, spec.tests.iter().find(|t| t.op == PredOp::Eq))
            {
                let keys = &mut alpha_keys[alpha.index()];
                if !keys.contains(&t.own_attr) {
                    keys.push(t.own_attr);
                }
            }
        }
        ReteMatcher {
            alpha_mems: vec![Vec::new(); network.alpha.len()],
            alpha_index: vec![FxHashMap::default(); network.alpha.len()],
            alpha_keys,
            mem_keys,
            memory: MemoryStrategy::default(),
            states,
            network,
            stats: MatchStats::default(),
            tracer: None,
            profile: None,
            obs: None,
            prof_local: Vec::new(),
            prof_touched: Vec::new(),
            sanitizer: None,
            phantom_published: 0,
            scratch: Scratch::default(),
        }
    }

    /// Attaches a debug [`ops5::effects::WriteSanitizer`]: every change
    /// batch handed to [`Matcher::process`] during a firing is checked
    /// against the firing production's static write set. Share the same
    /// `Arc` with the interpreter's `attach_sanitizer` — the interpreter
    /// owns the firing context this check keys on; batches seen outside
    /// a firing are not checked.
    pub fn attach_sanitizer(&mut self, sanitizer: Arc<ops5::effects::WriteSanitizer>) {
        self.sanitizer = Some(sanitizer);
    }

    /// Attaches an observability handle. When its flight recorder has
    /// capacity, the matcher records the network end of the causal
    /// chain — node activations and token births/deaths — so
    /// [`psm_obs::FlightRecorder::explain_firing`] can trace a firing
    /// back through the network. Costs one branch per activation when
    /// the recorder is off.
    pub fn attach_obs(&mut self, obs: Arc<Obs>) {
        self.prof_local = if obs.profile.enabled() {
            vec![(ProfileKind::Other, NodeDelta::default()); self.network.nodes.len()]
        } else {
            Vec::new()
        };
        self.prof_touched.clear();
        self.obs = Some(obs);
    }

    /// Flight-records one pending activation.
    fn obs_flight_task(&self, task: &Task) {
        let Some(obs) = &self.obs else { return };
        if !obs.flight.enabled() {
            return;
        }
        obs.flight.record(FlightKind::Activation {
            node: task.node.0,
            kind: self.task_kind(task).label(),
            wme: match task.payload {
                Payload::Right(id) => Some(id.index() as u32),
                Payload::Left(_) => None,
            },
        });
    }

    /// Flight-records a token produced (or retracted) at `node`.
    fn obs_flight_token(&self, node: NodeId, token: &Token, sign: Sign) {
        let Some(obs) = &self.obs else { return };
        if !obs.flight.enabled() {
            return;
        }
        let wmes: Vec<u32> = token.wmes().iter().map(|id| id.index() as u32).collect();
        obs.flight.record(match sign {
            Sign::Plus => FlightKind::TokenBirth { node: node.0, wmes },
            Sign::Minus => FlightKind::TokenDeath { node: node.0, wmes },
        });
    }

    /// Accumulates one activation into the matcher-local profile
    /// deltas — a no-op (one branch on an empty vec) unless the
    /// attached `Obs` handle was built with profile capacity. Plain
    /// non-atomic adds; [`flush_profile`](Self::flush_profile) pays the
    /// atomics once per touched node per batch.
    #[inline]
    fn obs_profile(&mut self, kind: ActivationKind, node: u32, pairs: u32, outputs: u32) {
        let Some(entry) = self.prof_local.get_mut(node as usize) else {
            return;
        };
        let (pk, right) = profile_kind(kind);
        if entry.1.tokens_in == 0 {
            self.prof_touched.push(node);
        }
        entry.0 = pk;
        entry.1.record(right, pairs as u64, outputs as u64);
    }

    /// Flushes the matcher-local profile deltas into the attached
    /// [`NodeProfiler`](psm_obs::NodeProfiler) — once per [`Matcher`]
    /// call, so concurrent `/profile` readers lag by at most one batch.
    fn flush_profile(&mut self) {
        if self.prof_touched.is_empty() {
            return;
        }
        let Some(obs) = &self.obs else { return };
        for &node in &self.prof_touched {
            let entry = &mut self.prof_local[node as usize];
            // This matcher is the profiler's only writer (the parallel
            // engine has its own per-worker flush into a separate Obs
            // attachment path), so the cheap non-RMW fold is safe.
            obs.profile.add_single_writer(node, entry.0, &entry.1);
            entry.1 = NodeDelta::default();
        }
        self.prof_touched.clear();
    }

    /// Publishes the `rete.token.phantom_removes` counter delta to the
    /// attached obs registry — once per [`Matcher`] call, and only when
    /// the count moved (healthy runs never pay the registry lock).
    fn flush_metrics(&mut self) {
        if self.stats.phantom_removes == self.phantom_published {
            return;
        }
        let delta = self.stats.phantom_removes - self.phantom_published;
        self.phantom_published = self.stats.phantom_removes;
        if let Some(obs) = &self.obs {
            obs.metrics.counter("rete.token.phantom_removes").add(delta);
        }
    }

    /// The compiled network.
    pub fn network(&self) -> &Arc<Network> {
        &self.network
    }

    /// Work counters so far.
    pub fn stats(&self) -> MatchStats {
        self.stats
    }

    /// Starts recording a node-activation trace (discarding any previous
    /// recording).
    pub fn enable_tracing(&mut self) {
        self.tracer = Some(TraceBuilder::new());
    }

    /// Starts per-node activation-time profiling (discarding any
    /// previous profile). Adds two clock reads per activation; leave
    /// off for pure throughput runs.
    pub fn enable_profiling(&mut self) {
        self.profile = Some(Box::new(MatchProfile::new(self.network.nodes.len())));
    }

    /// The activation-time profile recorded so far (if profiling is
    /// enabled).
    pub fn profile(&self) -> Option<&MatchProfile> {
        self.profile.as_deref()
    }

    /// Stops tracing and returns the recorded trace (empty if tracing was
    /// never enabled).
    pub fn take_trace(&mut self) -> Trace {
        self.tracer
            .take()
            .map(TraceBuilder::finish)
            .unwrap_or_default()
    }

    /// Number of WMEs resident in the alpha memory of `alpha`.
    pub fn alpha_memory_len(&self, alpha: crate::alpha::AlphaId) -> usize {
        self.alpha_mems[alpha.index()].len()
    }

    /// Total WME entries resident across all alpha memories.
    pub fn resident_alpha_entries(&self) -> usize {
        self.alpha_mems.iter().map(Vec::len).sum()
    }

    /// Total entries resident across all hash-index buckets (alpha
    /// `(attr, value)` buckets plus beta `(pos, attr, value)` buckets).
    ///
    /// Under [`MemoryStrategy::Hashed`] this must track residency: after
    /// a full assert/retract churn cycle it returns to its baseline. A
    /// value that keeps growing while `resident_tokens` and
    /// `resident_alpha_entries` are flat is a stale-index leak.
    pub fn resident_index_entries(&self) -> usize {
        let alpha: usize = self
            .alpha_index
            .iter()
            .flat_map(|index| index.values().map(Bucket::len))
            .sum();
        let beta: usize = self
            .states
            .iter()
            .map(|s| match s {
                NodeState::Mem { index, .. } => index.values().map(Bucket::len).sum(),
                _ => 0,
            })
            .sum();
        alpha + beta
    }

    /// Number of hash-index buckets currently allocated (alpha + beta).
    ///
    /// Empty buckets are pruned on removal, so this also returns to its
    /// baseline after a churn cycle instead of growing with the number
    /// of distinct values ever seen.
    pub fn resident_index_buckets(&self) -> usize {
        let alpha: usize = self.alpha_index.iter().map(FxHashMap::len).sum();
        let beta: usize = self
            .states
            .iter()
            .map(|s| match s {
                NodeState::Mem { index, .. } => index.len(),
                _ => 0,
            })
            .sum();
        alpha + beta
    }

    /// Total tokens resident across beta memories and negative nodes.
    pub fn resident_tokens(&self) -> usize {
        self.states
            .iter()
            .map(|s| match s {
                NodeState::Mem { tokens, .. } => tokens.len(),
                NodeState::Neg(e) => e.len(),
                NodeState::Stateless => 0,
            })
            .sum()
    }

    fn trace_record(
        &mut self,
        parent: Option<u32>,
        kind: ActivationKind,
        node: u32,
        tests: u32,
        scanned: u32,
        outputs: u32,
    ) -> Option<u32> {
        self.tracer
            .as_mut()
            .map(|t| t.record(parent, kind, node, tests, scanned, outputs))
    }

    /// Processes one WME change, accumulating conflict-set changes.
    fn process_change(
        &mut self,
        wm: &WorkingMemory,
        id: WmeId,
        sign: Sign,
        delta: &mut MatchDelta,
    ) {
        let wme = wm
            .get(id)
            .expect("matcher contract: changed WME must be resolvable");
        self.stats.changes += 1;
        if sign.is_plus() {
            self.stats.inserts += 1;
        }
        if let Some(t) = self.tracer.as_mut() {
            t.begin_change(sign.is_plus());
        }

        let net = Arc::clone(&self.network);
        let mut scratch = std::mem::take(&mut self.scratch);
        let alphas = &mut scratch.alphas;
        let const_tests = net.alpha.matching_into(wme, alphas);
        self.stats.constant_tests += const_tests;
        let const_act = self.trace_record(
            None,
            ActivationKind::ConstantTest,
            0,
            const_tests as u32,
            0,
            alphas.len() as u32,
        );
        if self.tracer.is_some() {
            let affected = net.affected_productions(alphas);
            if let Some(t) = self.tracer.as_mut() {
                t.set_affected(affected);
            }
        }

        let seed_started = self.profile.is_some().then(Instant::now);
        let queue = &mut scratch.queue;
        debug_assert!(queue.is_empty() && scratch.deferred.is_empty());
        // Right activations of negative nodes are deferred behind all
        // other right activations of the same change. A negative node
        // mutates its match counts synchronously inside its task, but a
        // join whose left input is that negative node must see the
        // *pre-change* left state (beta memories get this for free: their
        // updates ride the queue behind every seed). Otherwise the
        // conjugate-pair accounting breaks: a WME removal that unblocks a
        // token would make the join emit a minus for a pair that was
        // blocked — hence never built — while the WME was live.
        let deferred = &mut scratch.deferred;
        for &alpha in alphas.iter() {
            let mem = &mut self.alpha_mems[alpha.index()];
            match sign {
                Sign::Plus => mem.push(id),
                Sign::Minus => {
                    if let Some(pos) = mem.iter().position(|&w| w == id) {
                        mem.swap_remove(pos);
                    }
                }
            }
            if self.memory == MemoryStrategy::Hashed {
                let index = &mut self.alpha_index[alpha.index()];
                for &attr in &self.alpha_keys[alpha.index()] {
                    let Some(value) = wme.get(attr) else {
                        continue; // unprobeable: an Eq test on it would fail
                    };
                    match sign {
                        Sign::Plus => match index.entry((attr, value)) {
                            Entry::Occupied(mut e) => e.get_mut().push(id),
                            Entry::Vacant(e) => {
                                e.insert(Bucket::One(id));
                            }
                        },
                        Sign::Minus => {
                            // Prune buckets that drain to empty so churn
                            // workloads don't grow the map with every
                            // distinct value ever seen.
                            if let Some(bucket) = index.get_mut(&(attr, value)) {
                                if bucket.remove(&id) {
                                    index.remove(&(attr, value));
                                }
                            }
                        }
                    }
                }
            }
            self.stats.alpha_mem_ops += 1;
            let successors = &net.alpha_successors[alpha.index()];
            let am_act = self.trace_record(
                const_act,
                ActivationKind::AlphaMem,
                alpha.0,
                0,
                0,
                successors.len() as u32,
            );
            for &succ in successors {
                let task = Task {
                    node: succ,
                    payload: Payload::Right(id),
                    sign,
                    parent: am_act,
                };
                if net.node(succ).kind == NodeKind::Negative {
                    deferred.push(task);
                } else if !self.left_input_is_empty(net.node(succ).left) {
                    // A right activation whose left input holds no
                    // tokens scans nothing and mutates nothing; seeds
                    // all run before any same-change memory update (the
                    // queue is FIFO and updates ride behind every
                    // seed), so the emptiness seen here is exactly what
                    // the activation would see. Skipping it only saves
                    // the dispatch.
                    queue.push_back(task);
                }
            }
        }
        queue.extend(deferred.drain(..));

        if let Some(t0) = seed_started {
            let ns = t0.elapsed().as_nanos() as u64;
            if let Some(p) = self.profile.as_mut() {
                p.record(ActivationKind::ConstantTest, 0, ns);
            }
        }
        // Per-activation latency needs two clock reads, so the obs
        // profiler's histograms wait for the detail toggle on top of
        // profile capacity (its counters are recorded inside the
        // branches of `run_task`, always on with capacity).
        let obs_latency = self
            .obs
            .as_ref()
            .is_some_and(|o| o.profile.enabled() && o.detail());
        while let Some(task) = queue.pop_front() {
            self.obs_flight_task(&task);
            if self.profile.is_some() || obs_latency {
                let kind = self.task_kind(&task);
                let node = task.node.0;
                let t0 = Instant::now();
                self.run_task(&net, wm, task, queue, delta);
                let ns = t0.elapsed().as_nanos() as u64;
                if let Some(p) = self.profile.as_mut() {
                    p.record(kind, node, ns);
                }
                if obs_latency {
                    if let Some(obs) = &self.obs {
                        obs.profile.record_latency(node, ns);
                    }
                }
            } else {
                self.run_task(&net, wm, task, queue, delta);
            }
        }
        self.scratch = scratch;
    }

    /// True when a two-input node's left input can produce no tokens: a
    /// beta memory with no resident tokens, or a negative node with no
    /// entries at all. The dummy top input always yields its one token.
    fn left_input_is_empty(&self, left: Option<NodeId>) -> bool {
        match left {
            None => false,
            Some(id) => match &self.states[id.index()] {
                NodeState::Mem { tokens, .. } => tokens.is_empty(),
                NodeState::Neg(entries) => entries.is_empty(),
                NodeState::Stateless => false,
            },
        }
    }

    /// The [`ActivationKind`] `task` will execute as (for profiling).
    fn task_kind(&self, task: &Task) -> ActivationKind {
        match (self.network.node(task.node).kind, &task.payload) {
            (NodeKind::Join, Payload::Right(_)) => ActivationKind::JoinRight,
            (NodeKind::Join, Payload::Left(_)) => ActivationKind::JoinLeft,
            (NodeKind::Negative, Payload::Right(_)) => ActivationKind::NegativeRight,
            (NodeKind::Negative, Payload::Left(_)) => ActivationKind::NegativeLeft,
            (NodeKind::BetaMemory, _) => ActivationKind::BetaMem,
            (NodeKind::Terminal, _) => ActivationKind::Terminal,
        }
    }

    fn run_task(
        &mut self,
        net: &Network,
        wm: &WorkingMemory,
        task: Task,
        queue: &mut VecDeque<Task>,
        delta: &mut MatchDelta,
    ) {
        let spec = net.node(task.node);
        match (spec.kind, task.payload) {
            (NodeKind::Join, Payload::Right(wme_id)) => {
                let wme = wm.get(wme_id).expect("live wme");
                self.stats.right_activations += 1;
                let mut outputs = Vec::new();
                let mut tests_n = 0u32;
                let mut scanned = 0u32;
                let hashed_left = self.hashed_left_tokens(spec.left, &spec.tests, wme);
                let mut body = |token: &Token| {
                    scanned += 1;
                    let (ok, n) = eval_join_tests(wm, &spec.tests, token, wme);
                    tests_n += n;
                    if ok {
                        outputs.push(token.extended(wme_id));
                    }
                };
                match hashed_left {
                    Some(tokens) => tokens.iter().for_each(&mut body),
                    None => self.for_each_left_token(spec.left, body),
                }
                self.stats.join_tests += tests_n as u64;
                self.stats.pairs_scanned += scanned as u64;
                self.stats.tokens_created += outputs.len() as u64;
                self.obs_profile(
                    ActivationKind::JoinRight,
                    task.node.0,
                    scanned,
                    outputs.len() as u32,
                );
                let act = self.trace_record(
                    task.parent,
                    ActivationKind::JoinRight,
                    task.node.0,
                    tests_n,
                    scanned,
                    outputs.len() as u32,
                );
                for token in outputs {
                    self.dispatch_children(
                        net,
                        task.node,
                        &spec.children,
                        token,
                        task.sign,
                        act,
                        queue,
                    );
                }
            }
            (NodeKind::Join, Payload::Left(token)) => {
                self.stats.left_activations += 1;
                let mut outputs = Vec::new();
                let mut tests_n = 0u32;
                let mut scanned = 0u32;
                let alpha = spec.alpha.expect("join has alpha");
                let candidates: &[WmeId] =
                    match self.hashed_candidates(alpha, &spec.tests, &token, wm) {
                        Some(v) => v,
                        None => &self.alpha_mems[alpha.index()],
                    };
                for &wme_id in candidates {
                    scanned += 1;
                    let wme = wm.get(wme_id).expect("live wme in alpha memory");
                    let (ok, n) = eval_join_tests(wm, &spec.tests, &token, wme);
                    tests_n += n;
                    if ok {
                        outputs.push(token.extended(wme_id));
                    }
                }
                self.stats.join_tests += tests_n as u64;
                self.stats.pairs_scanned += scanned as u64;
                self.stats.tokens_created += outputs.len() as u64;
                self.obs_profile(
                    ActivationKind::JoinLeft,
                    task.node.0,
                    scanned,
                    outputs.len() as u32,
                );
                let act = self.trace_record(
                    task.parent,
                    ActivationKind::JoinLeft,
                    task.node.0,
                    tests_n,
                    scanned,
                    outputs.len() as u32,
                );
                for out in outputs {
                    self.dispatch_children(
                        net,
                        task.node,
                        &spec.children,
                        out,
                        task.sign,
                        act,
                        queue,
                    );
                }
            }
            (NodeKind::BetaMemory, Payload::Left(token)) => {
                self.stats.beta_mem_ops += 1;
                let hashed = self.memory == MemoryStrategy::Hashed;
                let node_keys = &self.mem_keys[task.node.index()];
                let NodeState::Mem {
                    tokens,
                    keys,
                    index,
                } = &mut self.states[task.node.index()]
                else {
                    unreachable!("beta memory state")
                };
                match task.sign {
                    Sign::Plus => {
                        // Key values are resolved from the working
                        // memory exactly once, here at insert time, and
                        // carried with the entry; the WME is live per
                        // the matcher contract and immutable after, so
                        // the captured values stay authoritative for
                        // the whole residency of the token.
                        tokens.push(token.clone());
                        if hashed {
                            for &(pos, attr) in node_keys {
                                let value = token
                                    .wme_at(pos)
                                    .and_then(|id| wm.get(id))
                                    .and_then(|w| w.get(attr));
                                if let Some(v) = value {
                                    match index.entry((pos, attr, v)) {
                                        Entry::Occupied(mut e) => e.get_mut().push(token.clone()),
                                        Entry::Vacant(e) => {
                                            e.insert(Bucket::One(token.clone()));
                                        }
                                    }
                                }
                                keys.push(value);
                            }
                        }
                        self.stats.token_added();
                    }
                    Sign::Minus => {
                        if let Some(at) = tokens.iter().position(|t| *t == token) {
                            tokens.swap_remove(at);
                            if hashed {
                                // Remove bucket entries through the
                                // captured insert-time keys — never by
                                // re-resolving from `wm`, whose view may
                                // already lack the referenced WMEs.
                                let k = node_keys.len();
                                for (j, &(pos, attr)) in node_keys.iter().enumerate() {
                                    if let Some(v) = keys[at * k + j] {
                                        let key = (pos, attr, v);
                                        if let Some(bucket) = index.get_mut(&key) {
                                            if bucket.remove(&token) {
                                                index.remove(&key);
                                            }
                                        }
                                    }
                                }
                                // Swap-remove the captured chunk to
                                // mirror the token's swap_remove above.
                                let last = keys.len() - k;
                                for j in 0..k {
                                    keys.swap(at * k + j, last + j);
                                }
                                keys.truncate(last);
                            }
                            self.stats.token_removed();
                        } else {
                            // Silent in earlier releases (debug_assert
                            // only); now counted so chaos/failover
                            // suites can gate on zero.
                            self.stats.phantom_removes += 1;
                        }
                    }
                }
                self.obs_profile(
                    ActivationKind::BetaMem,
                    task.node.0,
                    0,
                    spec.children.len() as u32,
                );
                let act = self.trace_record(
                    task.parent,
                    ActivationKind::BetaMem,
                    task.node.0,
                    0,
                    0,
                    spec.children.len() as u32,
                );
                for &child in &spec.children {
                    let child_spec = net.node(child);
                    if child_spec.kind == NodeKind::Join {
                        let alpha = child_spec.alpha.expect("join has alpha");
                        if self.alpha_mems[alpha.index()].is_empty() {
                            continue; // see dispatch_children
                        }
                    }
                    queue.push_back(Task {
                        node: child,
                        payload: Payload::Left(token.clone()),
                        sign: task.sign,
                        parent: act,
                    });
                }
            }
            (NodeKind::Negative, Payload::Left(token)) => {
                self.stats.left_activations += 1;
                let alpha = spec.alpha.expect("negative has alpha");
                let (propagate, tests_n, scanned) = match task.sign {
                    Sign::Plus => {
                        let mut count = 0u32;
                        let mut tests_n = 0u32;
                        let mut scanned = 0u32;
                        let candidates: &[WmeId] =
                            match self.hashed_candidates(alpha, &spec.tests, &token, wm) {
                                Some(v) => v,
                                None => &self.alpha_mems[alpha.index()],
                            };
                        for &wme_id in candidates {
                            scanned += 1;
                            let wme = wm.get(wme_id).expect("live wme");
                            let (ok, n) = eval_join_tests(wm, &spec.tests, &token, wme);
                            tests_n += n;
                            if ok {
                                count += 1;
                            }
                        }
                        let NodeState::Neg(entries) = &mut self.states[task.node.index()] else {
                            unreachable!("negative state")
                        };
                        entries.push(NegEntry {
                            token: token.clone(),
                            count,
                        });
                        self.stats.token_added();
                        (count == 0, tests_n, scanned)
                    }
                    Sign::Minus => {
                        let NodeState::Neg(entries) = &mut self.states[task.node.index()] else {
                            unreachable!("negative state")
                        };
                        let mut was_zero = false;
                        if let Some(pos) = entries.iter().position(|e| e.token == token) {
                            was_zero = entries[pos].count == 0;
                            entries.swap_remove(pos);
                            self.stats.token_removed();
                        } else {
                            self.stats.phantom_removes += 1;
                        }
                        (was_zero, 0, 0)
                    }
                };
                self.stats.join_tests += tests_n as u64;
                self.stats.pairs_scanned += scanned as u64;
                self.obs_profile(
                    ActivationKind::NegativeLeft,
                    task.node.0,
                    scanned,
                    u32::from(propagate),
                );
                let act = self.trace_record(
                    task.parent,
                    ActivationKind::NegativeLeft,
                    task.node.0,
                    tests_n,
                    scanned,
                    u32::from(propagate),
                );
                if propagate {
                    self.dispatch_children(
                        net,
                        task.node,
                        &spec.children,
                        token,
                        task.sign,
                        act,
                        queue,
                    );
                }
            }
            (NodeKind::Negative, Payload::Right(wme_id)) => {
                self.stats.right_activations += 1;
                let wme = wm.get(wme_id).expect("live wme");
                // Collect flips first (borrow of entries), then dispatch.
                let mut flips: Vec<Token> = Vec::new();
                let mut tests_n = 0u32;
                let mut scanned = 0u32;
                {
                    let NodeState::Neg(entries) = &mut self.states[task.node.index()] else {
                        unreachable!("negative state")
                    };
                    for entry in entries.iter_mut() {
                        scanned += 1;
                        let (ok, n) = eval_join_tests(wm, &spec.tests, &entry.token, wme);
                        tests_n += n;
                        if !ok {
                            continue;
                        }
                        match task.sign {
                            Sign::Plus => {
                                entry.count += 1;
                                if entry.count == 1 {
                                    flips.push(entry.token.clone());
                                }
                            }
                            Sign::Minus => {
                                debug_assert!(entry.count > 0, "negative count underflow");
                                entry.count = entry.count.saturating_sub(1);
                                if entry.count == 0 {
                                    flips.push(entry.token.clone());
                                }
                            }
                        }
                    }
                }
                self.stats.join_tests += tests_n as u64;
                self.stats.pairs_scanned += scanned as u64;
                self.obs_profile(
                    ActivationKind::NegativeRight,
                    task.node.0,
                    scanned,
                    flips.len() as u32,
                );
                let act = self.trace_record(
                    task.parent,
                    ActivationKind::NegativeRight,
                    task.node.0,
                    tests_n,
                    scanned,
                    flips.len() as u32,
                );
                // A new right match retracts instantiations; a removed
                // one re-asserts them: the propagated sign is inverted.
                let out_sign = match task.sign {
                    Sign::Plus => Sign::Minus,
                    Sign::Minus => Sign::Plus,
                };
                for token in flips {
                    self.dispatch_children(
                        net,
                        task.node,
                        &spec.children,
                        token,
                        out_sign,
                        act,
                        queue,
                    );
                }
            }
            (NodeKind::Terminal, Payload::Left(token)) => {
                self.stats.conflict_changes += 1;
                self.obs_profile(ActivationKind::Terminal, task.node.0, 0, 1);
                self.trace_record(task.parent, ActivationKind::Terminal, task.node.0, 0, 0, 1);
                let inst = Instantiation::new(
                    spec.production.expect("terminal has production"),
                    token.into_wmes(),
                );
                // Equivalent to `delta.merge(..)` with a single-entry
                // delta — net out an earlier opposite change, without
                // allocating a throwaway delta per conflict change.
                match task.sign {
                    Sign::Plus => {
                        if let Some(pos) = delta.removed.iter().position(|i| *i == inst) {
                            delta.removed.swap_remove(pos);
                        } else {
                            delta.added.push(inst);
                        }
                    }
                    Sign::Minus => {
                        if let Some(pos) = delta.added.iter().position(|i| *i == inst) {
                            delta.added.swap_remove(pos);
                        } else {
                            delta.removed.push(inst);
                        }
                    }
                }
            }
            (kind, payload) => unreachable!(
                "invalid activation: {kind:?} with {payload:?}",
                kind = kind,
                payload = match payload {
                    Payload::Right(_) => "right",
                    Payload::Left(_) => "left",
                }
            ),
        }
    }

    /// Under [`MemoryStrategy::Hashed`], resolves the candidate tokens
    /// of a *right* activation through the left beta memory's
    /// `(position, attribute, value)` bucket for the first equality
    /// join test. `None` means scan linearly (linear mode, dummy-top or
    /// negative-node left input, or no equality test).
    fn hashed_left_tokens(
        &self,
        left: Option<NodeId>,
        tests: &[JoinTest],
        wme: &Wme,
    ) -> Option<&[Token]> {
        if self.memory != MemoryStrategy::Hashed {
            return None;
        }
        let id = left?;
        let NodeState::Mem { index, .. } = &self.states[id.index()] else {
            return None; // negative-node left inputs stay linear
        };
        let t = tests.iter().find(|t| t.op == PredOp::Eq)?;
        Some(match wme.get(t.own_attr) {
            Some(v) => index
                .get(&(t.token_pos, t.token_attr, v))
                .map_or(&[][..], Bucket::as_slice),
            None => &[],
        })
    }

    /// Under [`MemoryStrategy::Hashed`], resolves the candidate WMEs of
    /// a left activation through the `(attr, value)` bucket of the first
    /// equality join test. Returns `None` when linear scanning applies
    /// (linear mode, or no equality test to index on); `Some(empty)`
    /// when the token lacks the tested attribute (nothing can match).
    fn hashed_candidates(
        &self,
        alpha: crate::alpha::AlphaId,
        tests: &[JoinTest],
        token: &Token,
        wm: &WorkingMemory,
    ) -> Option<&[WmeId]> {
        if self.memory != MemoryStrategy::Hashed {
            return None;
        }
        let t = tests.iter().find(|t| t.op == PredOp::Eq)?;
        let value = token
            .wme_at(t.token_pos)
            .and_then(|id| wm.get(id))
            .and_then(|w| w.get(t.token_attr));
        Some(match value {
            Some(v) => self.alpha_index[alpha.index()]
                .get(&(t.own_attr, v))
                .map_or(&[][..], Bucket::as_slice),
            None => &[],
        })
    }

    /// Iterates the tokens of a two-input node's left input: the dummy
    /// top token, a beta memory, or a negative node's zero-count tokens.
    fn for_each_left_token(&self, left: Option<NodeId>, mut f: impl FnMut(&Token)) {
        match left {
            None => f(&Token::top()),
            Some(id) => match &self.states[id.index()] {
                NodeState::Mem { tokens, .. } => tokens.iter().for_each(f),
                NodeState::Neg(entries) => entries
                    .iter()
                    .filter(|e| e.count == 0)
                    .for_each(|e| f(&e.token)),
                NodeState::Stateless => unreachable!("left input must hold tokens"),
            },
        }
    }

    /// Routes a token produced at `from` to a two-input node's children.
    ///
    /// A left activation of a *join* whose alpha memory is empty scans
    /// nothing and mutates nothing, so it is not enqueued at all. Alpha
    /// memories only change in the seed phase, before the queue drains,
    /// so the emptiness seen here is what the activation would see.
    /// Negative children always run — they record the token.
    fn dispatch_children(
        &mut self,
        net: &Network,
        from: NodeId,
        children: &[NodeId],
        token: Token,
        sign: Sign,
        parent: Option<u32>,
        queue: &mut VecDeque<Task>,
    ) {
        self.obs_flight_token(from, &token, sign);
        for &child in children {
            let child_spec = net.node(child);
            if child_spec.kind == NodeKind::Join {
                let alpha = child_spec.alpha.expect("join has alpha");
                if self.alpha_mems[alpha.index()].is_empty() {
                    continue;
                }
            }
            queue.push_back(Task {
                node: child,
                payload: Payload::Left(token.clone()),
                sign,
                parent,
            });
        }
    }
}

/// Maps an activation kind to the profiler's node taxonomy plus the
/// input side the activation arrived on. Both runtimes use this so the
/// profile table, the flight recorder, and `/explain` agree on node
/// naming.
pub fn profile_kind(kind: ActivationKind) -> (ProfileKind, bool) {
    match kind {
        ActivationKind::JoinRight => (ProfileKind::Join, true),
        ActivationKind::JoinLeft => (ProfileKind::Join, false),
        ActivationKind::NegativeRight => (ProfileKind::Negative, true),
        ActivationKind::NegativeLeft => (ProfileKind::Negative, false),
        ActivationKind::BetaMem => (ProfileKind::BetaMem, false),
        ActivationKind::Terminal => (ProfileKind::Terminal, false),
        ActivationKind::ConstantTest | ActivationKind::AlphaMem => (ProfileKind::Other, true),
    }
}

/// Evaluates join tests with short-circuiting, returning success and the
/// number of tests evaluated.
fn eval_join_tests(
    wm: &WorkingMemory,
    tests: &[JoinTest],
    token: &Token,
    wme: &Wme,
) -> (bool, u32) {
    let mut n = 0u32;
    for t in tests {
        n += 1;
        let own = wme.get(t.own_attr);
        let other = token
            .wme_at(t.token_pos)
            .and_then(|id| wm.get(id))
            .and_then(|w| w.get(t.token_attr));
        match (own, other) {
            (Some(a), Some(b)) if a.compare(t.op, b) => {}
            _ => return (false, n),
        }
    }
    (true, n)
}

impl Matcher for ReteMatcher {
    fn add_wme(&mut self, wm: &WorkingMemory, id: WmeId) -> MatchDelta {
        let mut delta = MatchDelta::new();
        self.process_change(wm, id, Sign::Plus, &mut delta);
        self.flush_profile();
        self.flush_metrics();
        delta
    }

    fn remove_wme(&mut self, wm: &WorkingMemory, id: WmeId) -> MatchDelta {
        let mut delta = MatchDelta::new();
        self.process_change(wm, id, Sign::Minus, &mut delta);
        self.flush_profile();
        self.flush_metrics();
        delta
    }

    fn process(&mut self, wm: &WorkingMemory, changes: &[Change]) -> MatchDelta {
        if let Some(s) = &self.sanitizer {
            s.check_batch(wm, changes);
        }
        if let Some(t) = self.tracer.as_mut() {
            t.begin_cycle();
        }
        let mut delta = MatchDelta::new();
        for &change in changes {
            match change {
                Change::Add(id) => self.process_change(wm, id, Sign::Plus, &mut delta),
                Change::Remove(id) => self.process_change(wm, id, Sign::Minus, &mut delta),
            }
        }
        if let Some(t) = self.tracer.as_mut() {
            t.end_cycle();
        }
        self.flush_profile();
        self.flush_metrics();
        delta
    }

    fn algorithm_name(&self) -> &'static str {
        "rete"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::{parse_program, parse_wme, Interpreter, SymbolTable};

    fn setup(src: &str) -> (ops5::Program, ReteMatcher, WorkingMemory, SymbolTable) {
        let program = parse_program(src).unwrap();
        let matcher = ReteMatcher::compile(&program).unwrap();
        let syms = program.symbols.clone();
        (program, matcher, WorkingMemory::new(), syms)
    }

    fn add(
        m: &mut ReteMatcher,
        wm: &mut WorkingMemory,
        syms: &mut SymbolTable,
        lit: &str,
    ) -> (WmeId, MatchDelta) {
        let wme = parse_wme(lit, syms).unwrap();
        let (id, _) = wm.add(wme);
        let delta = m.add_wme(wm, id);
        (id, delta)
    }

    fn remove(m: &mut ReteMatcher, wm: &mut WorkingMemory, id: WmeId) -> MatchDelta {
        let delta = m.remove_wme(wm, id);
        wm.remove(id);
        delta
    }

    #[test]
    fn single_ce_add_and_remove() {
        let (_p, mut m, mut wm, mut syms) = setup("(p r (block ^color red) --> (remove 1))");
        let (id, delta) = add(&mut m, &mut wm, &mut syms, "(block ^color red)");
        assert_eq!(delta.added.len(), 1);
        assert_eq!(delta.added[0].wmes, vec![id]);
        let (_, delta2) = add(&mut m, &mut wm, &mut syms, "(block ^color blue)");
        assert!(delta2.is_empty());
        let delta3 = remove(&mut m, &mut wm, id);
        assert_eq!(delta3.removed.len(), 1);
        assert_eq!(m.resident_tokens(), 0);
    }

    #[test]
    fn two_ce_join_with_binding() {
        let (_p, mut m, mut wm, mut syms) =
            setup("(p r (goal ^color <c>) (block ^color <c>) --> (remove 2))");
        let (g, d) = add(&mut m, &mut wm, &mut syms, "(goal ^color red)");
        assert!(d.is_empty());
        let (b1, d) = add(&mut m, &mut wm, &mut syms, "(block ^color red)");
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.added[0].wmes, vec![g, b1]);
        let (_b2, d) = add(&mut m, &mut wm, &mut syms, "(block ^color blue)");
        assert!(d.is_empty(), "binding mismatch");
        // A second goal joins with the existing red block.
        let (g2, d) = add(&mut m, &mut wm, &mut syms, "(goal ^color red)");
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.added[0].wmes, vec![g2, b1]);
        // Removing the block retracts both instantiations.
        let d = remove(&mut m, &mut wm, b1);
        assert_eq!(d.removed.len(), 2);
    }

    #[test]
    fn three_ce_chain_builds_and_unbuilds() {
        let (_p, mut m, mut wm, mut syms) =
            setup("(p r (a ^x <v>) (b ^x <v>) (c ^x <v>) --> (remove 1))");
        let (ia, _) = add(&mut m, &mut wm, &mut syms, "(a ^x 1)");
        let (_ib, _) = add(&mut m, &mut wm, &mut syms, "(b ^x 1)");
        let (_ic, d) = add(&mut m, &mut wm, &mut syms, "(c ^x 1)");
        assert_eq!(d.added.len(), 1);
        assert!(m.resident_tokens() > 0);
        let d = remove(&mut m, &mut wm, ia);
        assert_eq!(d.removed.len(), 1);
        assert_eq!(m.resident_tokens(), 0, "all partial state purged");
    }

    #[test]
    fn out_of_order_arrival_still_matches() {
        let (_p, mut m, mut wm, mut syms) = setup("(p r (a ^x <v>) (b ^x <v>) --> (remove 1))");
        // Right-CE WME arrives before the left one.
        let (_b, d) = add(&mut m, &mut wm, &mut syms, "(b ^x 3)");
        assert!(d.is_empty());
        let (_a, d) = add(&mut m, &mut wm, &mut syms, "(a ^x 3)");
        assert_eq!(d.added.len(), 1, "left activation scans alpha memory");
    }

    #[test]
    fn same_wme_matching_two_ces() {
        // One WME can satisfy both CEs (they test the same class).
        let (_p, mut m, mut wm, mut syms) = setup("(p r (n ^v <a>) (n ^v <a>) --> (remove 1))");
        let (w1, d) = add(&mut m, &mut wm, &mut syms, "(n ^v 5)");
        // (w1, w1) is a legitimate OPS5 instantiation.
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.added[0].wmes, vec![w1, w1]);
        let (w2, d) = add(&mut m, &mut wm, &mut syms, "(n ^v 5)");
        // New pairs: (w1,w2), (w2,w1), (w2,w2).
        assert_eq!(d.added.len(), 3);
        let d = remove(&mut m, &mut wm, w2);
        assert_eq!(d.removed.len(), 3);
    }

    #[test]
    fn negated_ce_lifecycle() {
        let (_p, mut m, mut wm, mut syms) =
            setup("(p r (goal ^g 1) - (blocker ^g 1) --> (remove 1))");
        let (_g, d) = add(&mut m, &mut wm, &mut syms, "(goal ^g 1)");
        assert_eq!(d.added.len(), 1, "no blocker yet");
        let (bl, d) = add(&mut m, &mut wm, &mut syms, "(blocker ^g 1)");
        assert_eq!(d.removed.len(), 1, "blocker retracts the instantiation");
        let (bl2, d) = add(&mut m, &mut wm, &mut syms, "(blocker ^g 1)");
        assert!(d.is_empty(), "second blocker changes nothing");
        let d = remove(&mut m, &mut wm, bl);
        assert!(d.is_empty(), "one blocker still present");
        let d = remove(&mut m, &mut wm, bl2);
        assert_eq!(d.added.len(), 1, "last blocker gone, rule satisfied again");
    }

    #[test]
    fn negated_ce_with_join_variable() {
        let (_p, mut m, mut wm, mut syms) =
            setup("(p r (goal ^color <c>) - (block ^color <c>) --> (remove 1))");
        let (_g, d) = add(&mut m, &mut wm, &mut syms, "(goal ^color red)");
        assert_eq!(d.added.len(), 1);
        let (_b, d) = add(&mut m, &mut wm, &mut syms, "(block ^color blue)");
        assert!(d.is_empty(), "different binding does not block");
        let (br, d) = add(&mut m, &mut wm, &mut syms, "(block ^color red)");
        assert_eq!(d.removed.len(), 1);
        let d = remove(&mut m, &mut wm, br);
        assert_eq!(d.added.len(), 1);
    }

    /// Conjugate-pair regression: one WME right-activates both a
    /// negative node and the join directly downstream of it (the negated
    /// CE and the next positive CE test the same class). The join's
    /// right activation must see the negative node's *pre-change* left
    /// state; seeing the post-flip state makes it build or delete pairs
    /// that never existed on the other side of the change.
    #[test]
    fn shared_class_negative_and_join_stay_consistent() {
        let (_p, mut m, mut wm, mut syms) =
            setup("(p r (a ^x <v>) - (b ^block <v>) (b ^val <v>) --> (remove 1))");
        let (ia, d) = add(&mut m, &mut wm, &mut syms, "(a ^x 1)");
        assert!(d.is_empty(), "no (b ^val 1) yet");
        // One WME that both blocks the negative CE and satisfies the
        // positive one: the block and the join flip in the same change.
        let (w1, d) = add(&mut m, &mut wm, &mut syms, "(b ^block 1 ^val 1)");
        assert!(d.is_empty(), "blocks itself: net nothing");
        let d = remove(&mut m, &mut wm, w1);
        assert!(d.is_empty(), "unblock and candidate loss cancel");
        // Sanity: a pure candidate fires, a pure blocker retracts it.
        let (_c, d) = add(&mut m, &mut wm, &mut syms, "(b ^val 1)");
        assert_eq!(d.added.len(), 1);
        let (bl, d) = add(&mut m, &mut wm, &mut syms, "(b ^block 1)");
        assert_eq!(d.removed.len(), 1);
        let d = remove(&mut m, &mut wm, bl);
        assert_eq!(d.added.len(), 1);
        let d = remove(&mut m, &mut wm, ia);
        assert_eq!(d.removed.len(), 1);
        assert_eq!(m.resident_tokens(), 0);
    }

    #[test]
    fn negative_then_positive_ce() {
        let (_p, mut m, mut wm, mut syms) =
            setup("(p r (s ^v <x>) - (no ^v <x>) (t ^v <x>) --> (remove 1))");
        let (_s, _) = add(&mut m, &mut wm, &mut syms, "(s ^v 1)");
        let (_t, d) = add(&mut m, &mut wm, &mut syms, "(t ^v 1)");
        assert_eq!(d.added.len(), 1);
        // Blocking the middle negative retracts downstream state.
        let (no, d) = add(&mut m, &mut wm, &mut syms, "(no ^v 1)");
        assert_eq!(d.removed.len(), 1);
        let d = remove(&mut m, &mut wm, no);
        assert_eq!(d.added.len(), 1);
    }

    #[test]
    fn negated_first_ce() {
        let (_p, mut m, mut wm, mut syms) = setup("(p r - (blocker) (a ^x 1) --> (remove 2))");
        let (a, d) = add(&mut m, &mut wm, &mut syms, "(a ^x 1)");
        assert_eq!(d.added.len(), 1, "top token passes the leading negation");
        assert_eq!(d.added[0].wmes, vec![a]);
        let (bl, d) = add(&mut m, &mut wm, &mut syms, "(blocker)");
        assert_eq!(d.removed.len(), 1);
        let d = remove(&mut m, &mut wm, bl);
        assert_eq!(d.added.len(), 1);
    }

    #[test]
    fn chain_of_leading_negatives() {
        let (_p, mut m, mut wm, mut syms) = setup("(p r - (b1) - (b2) (a ^x 1) --> (remove 3))");
        let (_a, d) = add(&mut m, &mut wm, &mut syms, "(a ^x 1)");
        assert_eq!(d.added.len(), 1);
        let (b2, d) = add(&mut m, &mut wm, &mut syms, "(b2)");
        assert_eq!(d.removed.len(), 1);
        let (b1, d) = add(&mut m, &mut wm, &mut syms, "(b1)");
        assert!(d.is_empty(), "already blocked by b2");
        let d = remove(&mut m, &mut wm, b2);
        assert!(d.is_empty(), "still blocked by b1");
        let d = remove(&mut m, &mut wm, b1);
        assert_eq!(d.added.len(), 1);
    }

    #[test]
    fn predicate_join_tests() {
        let (_p, mut m, mut wm, mut syms) = setup("(p r (lo ^v <x>) (hi ^v > <x>) --> (remove 1))");
        add(&mut m, &mut wm, &mut syms, "(lo ^v 10)");
        let (_h1, d) = add(&mut m, &mut wm, &mut syms, "(hi ^v 5)");
        assert!(d.is_empty());
        let (_h2, d) = add(&mut m, &mut wm, &mut syms, "(hi ^v 15)");
        assert_eq!(d.added.len(), 1);
    }

    #[test]
    fn shared_network_keeps_productions_independent() {
        let (_p, mut m, mut wm, mut syms) = setup(
            r#"
            (p a (g ^t x) (h ^u <v>) (i ^w <v>) --> (remove 1))
            (p b (g ^t x) (h ^u <v>) (j ^w <v>) --> (remove 1))
            "#,
        );
        add(&mut m, &mut wm, &mut syms, "(g ^t x)");
        add(&mut m, &mut wm, &mut syms, "(h ^u 9)");
        let (_i, d) = add(&mut m, &mut wm, &mut syms, "(i ^w 9)");
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.added[0].production, ops5::ProductionId(0));
        let (_j, d) = add(&mut m, &mut wm, &mut syms, "(j ^w 9)");
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.added[0].production, ops5::ProductionId(1));
    }

    #[test]
    fn modify_converges_when_condition_cleared() {
        // The modify falsifies the rule's own condition: exactly one
        // firing, and the batch delta nets to "old instantiation removed,
        // nothing added".
        let (program, matcher, _wm, _syms) = setup("(p r (c ^on yes) --> (modify 1 ^on no))");
        let mut interp = Interpreter::new(program, matcher);
        let mut syms = interp.program().symbols.clone();
        interp.insert(parse_wme("(c ^on yes)", &mut syms).unwrap());
        let fired = interp.run(10).unwrap();
        assert_eq!(fired, 1);
        assert!(interp.conflict_set().is_empty());
    }

    #[test]
    fn self_renewing_modify_loops_like_ops5() {
        // A modify that keeps the rule satisfied creates a fresh WME
        // (fresh time tag), so refraction never kicks in — OPS5 loops.
        let (program, matcher, _wm, _syms) = setup("(p r (c ^on yes ^n <n>) --> (modify 1 ^n 0))");
        let mut interp = Interpreter::new(program, matcher);
        let mut syms = interp.program().symbols.clone();
        interp.insert(parse_wme("(c ^on yes ^n 5)", &mut syms).unwrap());
        let fired = interp.run(10).unwrap();
        assert_eq!(fired, 10, "hits the cycle limit");
        assert_eq!(interp.working_memory().len(), 1, "one WME at a time");
    }

    #[test]
    fn end_to_end_paper_program() {
        let (program, matcher, _wm, _syms) = setup(
            r#"
            (p find-colored-blk
               (goal ^type find-blk ^color <c>)
               (block ^id <i> ^color <c> ^selected no)
               -->
               (modify 2 ^selected yes))
            "#,
        );
        let mut interp = Interpreter::new(program, matcher);
        let mut syms = interp.program().symbols.clone();
        interp.insert(parse_wme("(goal ^type find-blk ^color red)", &mut syms).unwrap());
        for i in 0..5 {
            let color = if i % 2 == 0 { "red" } else { "blue" };
            interp.insert(
                parse_wme(
                    &format!("(block ^id {i} ^color {color} ^selected no)"),
                    &mut syms,
                )
                .unwrap(),
            );
        }
        let fired = interp.run(100).unwrap();
        assert_eq!(fired, 3, "three red blocks get selected");
        let stats = interp.matcher().stats();
        assert!(stats.node_activations() > 0);
        assert!(stats.changes > 0);
    }

    #[test]
    fn tracing_captures_activations_and_affected() {
        let (_p, mut m, mut wm, mut syms) = setup("(p r (a ^x <v>) (b ^x <v>) --> (remove 1))");
        m.enable_tracing();
        add(&mut m, &mut wm, &mut syms, "(a ^x 1)");
        add(&mut m, &mut wm, &mut syms, "(b ^x 1)");
        let trace = m.take_trace();
        assert_eq!(trace.total_changes(), 2);
        assert!(trace.total_activations() >= 4);
        let first = &trace.cycles[0].changes[0];
        assert_eq!(first.affected_productions, vec![ops5::ProductionId(0)]);
        assert!(first.is_add);
        // Every parent id refers to an earlier record.
        for c in trace.cycles.iter().flat_map(|c| &c.changes) {
            for a in &c.activations {
                if let Some(p) = a.parent {
                    assert!(p < a.id);
                }
            }
        }
    }

    #[test]
    fn stats_accumulate() {
        let (_p, mut m, mut wm, mut syms) = setup("(p r (a ^x <v>) (b ^x <v>) --> (remove 1))");
        add(&mut m, &mut wm, &mut syms, "(a ^x 1)");
        add(&mut m, &mut wm, &mut syms, "(b ^x 1)");
        let s = m.stats();
        assert_eq!(s.changes, 2);
        assert_eq!(s.inserts, 2);
        assert!(s.constant_tests > 0);
        assert!(s.right_activations >= 2);
        assert_eq!(s.conflict_changes, 1);
        assert!(s.peak_tokens >= 1);
    }

    #[test]
    fn same_type_predicate_joins() {
        let (_p, mut m, mut wm, mut syms) = setup("(p r (a ^x <v>) (b ^y <=> <v>) --> (remove 1))");
        add(&mut m, &mut wm, &mut syms, "(a ^x 5)");
        let (_b1, d) = add(&mut m, &mut wm, &mut syms, "(b ^y red)");
        assert!(d.is_empty(), "symbol is not same-type as integer");
        let (_b2, d) = add(&mut m, &mut wm, &mut syms, "(b ^y 99)");
        assert_eq!(d.added.len(), 1, "integer is same-type as integer");
    }

    #[test]
    fn disjunction_tests_share_alpha_nodes() {
        let program = parse_program(
            r#"
            (p a (c ^x << red blue >>) --> (remove 1))
            (p b (c ^x << red blue >>) --> (remove 1))
            "#,
        )
        .unwrap();
        let m = ReteMatcher::compile(&program).unwrap();
        assert_eq!(m.network().stats.alpha_nodes, 1, "disjunction shared");
    }

    #[test]
    fn conjunction_with_variable_predicate_joins() {
        let (_p, mut m, mut wm, mut syms) =
            setup("(p r (lo ^v <x>) (mid ^v { > <x> < 100 }) --> (remove 1))");
        add(&mut m, &mut wm, &mut syms, "(lo ^v 10)");
        let (_a, d) = add(&mut m, &mut wm, &mut syms, "(mid ^v 5)");
        assert!(d.is_empty(), "fails > <x>");
        let (_b, d) = add(&mut m, &mut wm, &mut syms, "(mid ^v 150)");
        assert!(d.is_empty(), "fails < 100");
        let (_c, d) = add(&mut m, &mut wm, &mut syms, "(mid ^v 50)");
        assert_eq!(d.added.len(), 1);
    }

    #[test]
    fn hashed_memories_match_linear_with_fewer_scans() {
        let program = parse_program(
            r#"
            (p pair (a ^x <v>) (b ^x <v>) --> (remove 1))
            (p guarded (goal ^x <v>) - (veto ^x <v>) --> (remove 1))
            "#,
        )
        .unwrap();
        let mut linear = ReteMatcher::compile_linear(&program).unwrap();
        let mut hashed = ReteMatcher::compile(&program).unwrap();
        assert_eq!(linear.memory_strategy(), MemoryStrategy::Linear);
        assert_eq!(
            hashed.memory_strategy(),
            MemoryStrategy::Hashed,
            "hashed memories are the production default"
        );
        let mut wm = WorkingMemory::new();
        let mut syms = program.symbols.clone();
        let mut ids = Vec::new();
        // Many b's with diverse x values: the linear matcher scans them
        // all on each `a` left activation; hashed probes one bucket.
        for i in 0..20 {
            let (id, _) = wm.add(parse_wme(&format!("(b ^x {i})"), &mut syms).unwrap());
            ids.push(id);
            let mut d1 = linear.add_wme(&wm, id);
            let mut d2 = hashed.add_wme(&wm, id);
            d1.canonicalize();
            d2.canonicalize();
            assert_eq!(d1, d2);
        }
        for lit in ["(a ^x 3)", "(goal ^x 1)", "(veto ^x 1)", "(a ^x 19)"] {
            let (id, _) = wm.add(parse_wme(lit, &mut syms).unwrap());
            ids.push(id);
            let mut d1 = linear.add_wme(&wm, id);
            let mut d2 = hashed.add_wme(&wm, id);
            d1.canonicalize();
            d2.canonicalize();
            assert_eq!(d1, d2, "at {lit}");
        }
        // Removals agree too.
        for id in ids {
            let mut d1 = linear.remove_wme(&wm, id);
            let mut d2 = hashed.remove_wme(&wm, id);
            wm.remove(id);
            d1.canonicalize();
            d2.canonicalize();
            assert_eq!(d1, d2);
        }
        assert!(
            hashed.stats().pairs_scanned < linear.stats().pairs_scanned,
            "hashed {} vs linear {}",
            hashed.stats().pairs_scanned,
            linear.stats().pairs_scanned
        );
    }

    #[test]
    fn hashed_beta_memory_speeds_right_activations() {
        // Big left memory (many goal x block partial matches), then a
        // right activation on the final CE: linear scans every token,
        // hashed probes one bucket.
        let src = "(p r (g ^x <v>) (h ^x <v>) (i ^x <v>) --> (remove 1))";
        let (program, _m, mut wm, mut syms) = setup(src);
        let mut lin = ReteMatcher::compile_linear(&program).unwrap();
        let program2 = parse_program(src).unwrap();
        let mut hsh = ReteMatcher::compile_hashed(&program2).unwrap();

        let feed = |m: &mut ReteMatcher, wm: &mut WorkingMemory, syms: &mut SymbolTable| {
            for v in 0..15 {
                for lit in [format!("(g ^x {v})"), format!("(h ^x {v})")] {
                    let wme = parse_wme(&lit, syms).unwrap();
                    let (id, _) = wm.add(wme);
                    m.add_wme(wm, id);
                }
            }
            // One right activation on the last CE.
            let wme = parse_wme("(i ^x 7)", syms).unwrap();
            let (id, _) = wm.add(wme);
            m.add_wme(wm, id)
        };
        let mut d1 = feed(&mut lin, &mut wm, &mut syms);
        let mut wm2 = WorkingMemory::new();
        let mut syms2 = program2.symbols.clone();
        let mut d2 = feed(&mut hsh, &mut wm2, &mut syms2);
        d1.canonicalize();
        d2.canonicalize();
        assert_eq!(d1.added.len(), 1);
        assert_eq!(d1, d2);
        assert!(
            hsh.stats().pairs_scanned * 2 < lin.stats().pairs_scanned,
            "hashed {} vs linear {}",
            hsh.stats().pairs_scanned,
            lin.stats().pairs_scanned
        );
    }

    #[test]
    fn unshared_network_produces_same_matches() {
        let program = parse_program(
            r#"
            (p a (g ^t x) (h ^u <v>) --> (remove 1))
            (p b (g ^t x) (h ^u <v>) --> (remove 2))
            "#,
        )
        .unwrap();
        let mut shared = ReteMatcher::compile(&program).unwrap();
        let mut unshared =
            ReteMatcher::compile_with(&program, CompileOptions { share: false }).unwrap();
        let mut wm = WorkingMemory::new();
        let mut syms = program.symbols.clone();
        for lit in ["(g ^t x)", "(h ^u 1)", "(h ^u 2)"] {
            let wme = parse_wme(lit, &mut syms).unwrap();
            let (id, _) = wm.add(wme);
            let mut d1 = shared.add_wme(&wm, id);
            let mut d2 = unshared.add_wme(&wm, id);
            d1.canonicalize();
            d2.canonicalize();
            assert_eq!(d1, d2);
        }
        // Sharing does strictly less constant-test work.
        assert!(shared.stats().constant_tests <= unshared.stats().constant_tests);
    }

    #[test]
    fn per_node_profiler_measures_selectivity() {
        // Hand-built two-join chain: three CEs sharing one variable.
        let (_p, mut m, mut wm, mut syms) =
            setup("(p r (a ^x <v>) (b ^x <v>) (c ^x <v>) --> (remove 1))");
        let obs = Arc::new(Obs::with_profile(16, 0, 64));
        m.attach_obs(Arc::clone(&obs));
        add(&mut m, &mut wm, &mut syms, "(a ^x 1)");
        add(&mut m, &mut wm, &mut syms, "(a ^x 2)");
        add(&mut m, &mut wm, &mut syms, "(b ^x 1)");
        let (_, d) = add(&mut m, &mut wm, &mut syms, "(c ^x 1)");
        assert_eq!(d.added.len(), 1);
        let snap = obs.profile.snapshot();
        let joins: Vec<u32> = m
            .network()
            .iter()
            .filter(|(_, s)| s.kind == NodeKind::Join)
            .map(|(id, _)| id.0)
            .collect();
        assert_eq!(joins.len(), 3);
        let row = |node: u32| {
            snap.rows
                .iter()
                .find(|r| r.node == node)
                .unwrap_or_else(|| panic!("node {node} missing from profile"))
        };
        // Top join: every `a` passes the dummy-top token through.
        assert_eq!(row(joins[0]).kind, "join");
        assert_eq!(row(joins[0]).right, 2);
        assert_eq!(row(joins[0]).pairs, 2);
        assert_eq!(row(joins[0]).tokens_out, 2);
        assert!((row(joins[0]).selectivity - 1.0).abs() < 1e-12);
        // The b-join: the two tokens produced by the `a` inserts would
        // left-activate it, but its alpha memory is empty at that point
        // and empty-input activations are skipped at dispatch, so only
        // the one right activation runs. Under the hashed default it
        // probes the left memory's `(0, x, 1)` bucket, so only the one
        // matching token is scanned.
        assert_eq!(row(joins[1]).left, 0);
        assert_eq!(row(joins[1]).right, 1);
        assert_eq!(row(joins[1]).pairs, 1);
        assert_eq!(row(joins[1]).tokens_out, 1);
        assert!((row(joins[1]).selectivity - 1.0).abs() < 1e-12);
        // The c-join: the single surviving token meets the single c WME.
        assert_eq!(row(joins[2]).pairs, 1);
        assert_eq!(row(joins[2]).tokens_out, 1);
        assert!((row(joins[2]).selectivity - 1.0).abs() < 1e-12);
        // Counters are on, but latency histograms wait for the detail
        // toggle.
        assert_eq!(row(joins[1]).latency.count, 0);
        obs.set_detail(true);
        add(&mut m, &mut wm, &mut syms, "(b ^x 2)");
        let snap = obs.profile.snapshot();
        assert!(
            snap.rows.iter().any(|r| r.latency.count > 0),
            "detail toggle enables latency recording"
        );
    }

    /// Stale-index regression (ISSUE 10): a beta-memory minus must
    /// remove the token's hash-bucket entries through the key values
    /// captured at insert time. Re-resolving them from the caller's
    /// working memory is wrong the moment that view diverges — the
    /// `Matcher` contract only guarantees the *changed* WME is
    /// resolvable, not every WME a resident token references. Pre-fix,
    /// the bucket entry survives the retraction (a phantom join
    /// candidate) and the index grows without bound under churn.
    #[test]
    fn minus_uses_captured_keys_not_the_callers_wm_view() {
        // `d` probes M3 (the memory after the c-join) on `(1, q)` — a
        // key living on the *b* WME — while the c-join's own test only
        // touches position 0 (the `a` WME). Retracting `c` therefore
        // reaches M3 without ever needing `b` to be resolvable.
        let (_p, mut m, mut wm, mut syms) =
            setup("(p r (a ^u <x>) (b ^q <y>) (c ^u <x>) (d ^q <y>) --> (remove 1))");
        add(&mut m, &mut wm, &mut syms, "(a ^u 1)");
        let (ib, _) = add(&mut m, &mut wm, &mut syms, "(b ^q 7)");
        let before = m.resident_index_entries();
        let (ic, _) = add(&mut m, &mut wm, &mut syms, "(c ^u 1)");
        // `c` adds one alpha-index entry and one M3 bucket entry.
        assert_eq!(m.resident_index_entries(), before + 2);

        // The caller's WM view drops `b` without informing the matcher
        // (divergent replica / crash-recovery edge), then retracts `c`
        // through the normal path. `c` itself is still resolvable, so
        // the call is in contract.
        wm.remove(ib);
        let d = m.process(&wm, &[Change::Remove(ic)]);
        assert!(d.is_empty());

        // The (a b c) token is gone from M3's bucket even though its
        // `(1, q)` key WME was unresolvable at minus time.
        assert_eq!(
            m.resident_index_entries(),
            before,
            "retraction must clean the hash bucket via captured keys"
        );
        assert_eq!(m.stats().phantom_removes, 0);
    }

    /// Empty buckets are pruned on removal: a full assert/retract churn
    /// cycle returns both the entry count and the bucket (key) count to
    /// baseline instead of growing with every distinct value ever seen.
    #[test]
    fn index_buckets_prune_to_baseline_after_churn() {
        let (_p, mut m, mut wm, mut syms) = setup("(p r (a ^x <v>) (b ^x <v>) --> (remove 1))");
        assert_eq!(m.resident_index_entries(), 0);
        assert_eq!(m.resident_index_buckets(), 0);
        for round in 0..3 {
            let mut ids = Vec::new();
            for i in 0..10 {
                let v = round * 100 + i; // fresh values every round
                let (id, _) = add(&mut m, &mut wm, &mut syms, &format!("(a ^x {v})"));
                ids.push(id);
                let (id, _) = add(&mut m, &mut wm, &mut syms, &format!("(b ^x {v})"));
                ids.push(id);
            }
            assert!(m.resident_index_buckets() > 0);
            for id in ids {
                remove(&mut m, &mut wm, id);
            }
            assert_eq!(m.resident_index_entries(), 0, "round {round}");
            assert_eq!(m.resident_index_buckets(), 0, "round {round}");
        }
        assert_eq!(m.resident_alpha_entries(), 0);
        assert_eq!(m.stats().phantom_removes, 0);
    }

    /// Deleting a token absent from a memory is counted (not just
    /// debug-asserted) and published as `rete.token.phantom_removes`.
    #[test]
    fn phantom_removes_are_counted_and_published() {
        let (_p, mut m, mut wm, mut syms) = setup("(p r (a ^x <v>) (b ^x <v>) --> (remove 1))");
        let obs = Arc::new(Obs::new(16));
        m.attach_obs(Arc::clone(&obs));
        let (ia, _) = add(&mut m, &mut wm, &mut syms, "(a ^x 1)");
        let d = m.remove_wme(&wm, ia);
        assert!(d.is_empty());
        assert_eq!(m.stats().phantom_removes, 0);
        // A duplicate retraction (API misuse / divergent caller) now
        // reaches a beta memory that no longer holds the token.
        let d = m.remove_wme(&wm, ia);
        assert!(d.is_empty());
        assert_eq!(m.stats().phantom_removes, 1);
        assert_eq!(
            obs.metrics.counter("rete.token.phantom_removes").get(),
            1,
            "counter published on flush"
        );
    }

    #[test]
    fn profiler_off_records_nothing() {
        let (_p, mut m, mut wm, mut syms) = setup("(p r (a ^x <v>) (b ^x <v>) --> (remove 1))");
        // Flight capacity but no profile capacity: the profiler stays
        // off even though obs is attached.
        let obs = Arc::new(Obs::with_flight(16, 64));
        m.attach_obs(Arc::clone(&obs));
        add(&mut m, &mut wm, &mut syms, "(a ^x 1)");
        add(&mut m, &mut wm, &mut syms, "(b ^x 1)");
        assert!(!obs.profile.enabled());
        assert_eq!(obs.profile.snapshot().retained, 0);
        assert_eq!(obs.profile.overflow(), 0);
    }
}
