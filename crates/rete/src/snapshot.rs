//! Versioned checkpoint/restore of a live [`ReteMatcher`].
//!
//! The paper's §3.1 argument for state-saving algorithms — incremental
//! match state is ~20× cheaper to keep than to re-derive — is also the
//! argument for being able to *snapshot* that state: when a worker dies
//! mid-cycle, restoring a snapshot and replaying the change tail is far
//! cheaper than rebuilding the network state from the whole working
//! memory. This module serializes everything dynamic in a matcher —
//! alpha memories (and hash indexes), beta-memory tokens, negative-node
//! counts, and the work counters — into a canonical byte stream.
//!
//! The encoding is deterministic (hash-map keys are emitted in sorted
//! order), so two matchers in identical logical states produce identical
//! bytes. `psm-fault` leans on this: its recovery audit compares the
//! snapshot of a restored-and-replayed matcher byte-for-byte against the
//! snapshot of a matcher that lived through the same changes.

use std::sync::Arc;

use ops5::{ByteReader, ByteWriter, CodecError, FxHashMap, SymbolId, Value, WmeId};

use crate::bucket::Bucket;
use crate::network::Network;
use crate::runtime::{MemoryStrategy, NegEntry, NodeState, ReteMatcher};
use crate::stats::MatchStats;
use crate::token::Token;

const MAGIC: [u8; 4] = *b"PSMR";
// v2: `phantom_removes` joined the stats block, and beta-memory entries
// carry their captured hash-index key values (parallel to the tokens).
const VERSION: u32 = 2;

/// A serialized matcher state (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReteSnapshot {
    bytes: Vec<u8>,
}

impl ReteSnapshot {
    /// The raw snapshot bytes (stable, versioned format).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Wraps raw bytes previously produced by [`ReteMatcher::snapshot`]
    /// (e.g. read back from a checkpoint file). Validated on restore.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        ReteSnapshot { bytes }
    }

    /// Snapshot size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the snapshot holds no bytes (never produced by
    /// [`ReteMatcher::snapshot`]).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

fn encode_token(w: &mut ByteWriter, token: &Token) {
    w.usize(token.len());
    for &id in token.wmes() {
        w.u32(id.index() as u32);
    }
}

fn decode_token(r: &mut ByteReader<'_>) -> Result<Token, CodecError> {
    let n = r.usize()?;
    let mut wmes = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        wmes.push(WmeId::from_index(r.u32()? as usize));
    }
    Ok(Token::from_wmes(wmes))
}

fn encode_stats(w: &mut ByteWriter, s: &MatchStats) {
    for v in [
        s.changes,
        s.inserts,
        s.constant_tests,
        s.alpha_mem_ops,
        s.right_activations,
        s.left_activations,
        s.join_tests,
        s.pairs_scanned,
        s.beta_mem_ops,
        s.tokens_created,
        s.conflict_changes,
        s.peak_tokens,
        s.live_tokens,
        s.phantom_removes,
    ] {
        w.u64(v);
    }
}

fn decode_stats(r: &mut ByteReader<'_>) -> Result<MatchStats, CodecError> {
    let mut s = MatchStats::default();
    for field in [
        &mut s.changes,
        &mut s.inserts,
        &mut s.constant_tests,
        &mut s.alpha_mem_ops,
        &mut s.right_activations,
        &mut s.left_activations,
        &mut s.join_tests,
        &mut s.pairs_scanned,
        &mut s.beta_mem_ops,
        &mut s.tokens_created,
        &mut s.conflict_changes,
        &mut s.peak_tokens,
        &mut s.live_tokens,
        &mut s.phantom_removes,
    ] {
        *field = r.u64()?;
    }
    Ok(s)
}

fn encode_captured_keys(w: &mut ByteWriter, keys: &[Option<Value>]) {
    w.usize(keys.len());
    for key in keys {
        match key {
            Some(v) => {
                w.u8(1);
                v.encode(w);
            }
            None => w.u8(0),
        }
    }
}

fn decode_captured_keys(r: &mut ByteReader<'_>) -> Result<Box<[Option<Value>]>, CodecError> {
    let n = r.usize()?;
    let mut keys = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        keys.push(match r.u8()? {
            0 => None,
            1 => Some(Value::decode(r)?),
            _ => return Err(CodecError::Invalid("bad captured-key tag")),
        });
    }
    Ok(keys.into_boxed_slice())
}

impl ReteMatcher {
    /// Serializes all dynamic matcher state into a versioned snapshot.
    ///
    /// The compiled network is *not* included — it is static and cheap
    /// to recompile — so [`ReteMatcher::restore`] needs the same
    /// [`Network`] the snapshot was taken against.
    pub fn snapshot(&self) -> ReteSnapshot {
        let mut w = ByteWriter::with_header(MAGIC, VERSION);
        w.usize(self.network().nodes.len());
        w.usize(self.alpha_mems.len());
        w.u8(match self.memory {
            MemoryStrategy::Linear => 0,
            MemoryStrategy::Hashed => 1,
        });
        encode_stats(&mut w, &self.stats);

        for mem in &self.alpha_mems {
            w.usize(mem.len());
            for &id in mem {
                w.u32(id.index() as u32);
            }
        }
        for index in &self.alpha_index {
            let mut keys: Vec<&(SymbolId, Value)> = index.keys().collect();
            keys.sort_unstable();
            w.usize(keys.len());
            for key in keys {
                w.u32(key.0.index() as u32);
                key.1.encode(&mut w);
                let bucket = &index[key];
                w.usize(bucket.len());
                for &id in bucket.as_slice() {
                    w.u32(id.index() as u32);
                }
            }
        }
        for (node, state) in self.states.iter().enumerate() {
            match state {
                NodeState::Mem {
                    tokens,
                    keys,
                    index,
                } => {
                    w.u8(0);
                    w.usize(tokens.len());
                    for t in tokens {
                        encode_token(&mut w, t);
                    }
                    // Captured insert-time key values, one fixed-width
                    // chunk per token (none under the linear strategy;
                    // the runtime stores them flattened).
                    let width = self.mem_keys[node].len();
                    let chunks = if width == 0 { 0 } else { keys.len() / width };
                    w.usize(chunks);
                    for chunk in keys.chunks_exact(width.max(1)).take(chunks) {
                        encode_captured_keys(&mut w, chunk);
                    }
                    let mut keys: Vec<&(usize, SymbolId, Value)> = index.keys().collect();
                    keys.sort_unstable();
                    w.usize(keys.len());
                    for key in keys {
                        w.usize(key.0);
                        w.u32(key.1.index() as u32);
                        key.2.encode(&mut w);
                        let bucket = &index[key];
                        w.usize(bucket.len());
                        for t in bucket.as_slice() {
                            encode_token(&mut w, t);
                        }
                    }
                }
                NodeState::Neg(entries) => {
                    w.u8(1);
                    w.usize(entries.len());
                    for e in entries {
                        encode_token(&mut w, &e.token);
                        w.u32(e.count);
                    }
                }
                NodeState::Stateless => w.u8(2),
            }
        }
        ReteSnapshot { bytes: w.finish() }
    }

    /// Rebuilds a matcher from `snapshot` over `network`.
    ///
    /// `network` must be (structurally) the network the snapshot was
    /// taken against; node and alpha-memory counts are checked.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on bad magic/version, malformed data, or a
    /// network whose shape does not match the snapshot.
    pub fn restore(network: Arc<Network>, snapshot: &ReteSnapshot) -> Result<Self, CodecError> {
        let (mut r, version) = ByteReader::with_header(snapshot.as_bytes(), MAGIC)?;
        if version != VERSION {
            return Err(CodecError::BadVersion {
                supported: VERSION,
                found: version,
            });
        }
        let nodes = r.usize()?;
        let alphas = r.usize()?;
        if nodes != network.nodes.len() || alphas != network.alpha.len() {
            return Err(CodecError::Invalid("snapshot does not match this network"));
        }
        let memory = match r.u8()? {
            0 => MemoryStrategy::Linear,
            1 => MemoryStrategy::Hashed,
            _ => return Err(CodecError::Invalid("bad memory-strategy tag")),
        };
        let stats = decode_stats(&mut r)?;

        let mut alpha_mems = Vec::with_capacity(alphas);
        for _ in 0..alphas {
            let n = r.usize()?;
            let mut mem = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                mem.push(WmeId::from_index(r.u32()? as usize));
            }
            alpha_mems.push(mem);
        }
        let mut alpha_index = Vec::with_capacity(alphas);
        for _ in 0..alphas {
            let keys = r.usize()?;
            let mut index: FxHashMap<(SymbolId, Value), Bucket<WmeId>> = FxHashMap::default();
            for _ in 0..keys {
                let sym = SymbolId::from_index(r.u32()? as usize);
                let value = Value::decode(&mut r)?;
                let len = r.usize()?;
                let mut bucket = Vec::with_capacity(len.min(1 << 20));
                for _ in 0..len {
                    bucket.push(WmeId::from_index(r.u32()? as usize));
                }
                if let Some(bucket) = Bucket::from_vec(bucket) {
                    index.insert((sym, value), bucket);
                }
            }
            alpha_index.push(index);
        }
        let mut states = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            states.push(match r.u8()? {
                0 => {
                    let n = r.usize()?;
                    let mut tokens = Vec::with_capacity(n.min(1 << 20));
                    for _ in 0..n {
                        tokens.push(decode_token(&mut r)?);
                    }
                    let nk = r.usize()?;
                    if nk != 0 && nk != n {
                        return Err(CodecError::Invalid("captured keys not parallel to tokens"));
                    }
                    // Flatten the per-token chunks into the runtime's
                    // flat parallel layout; all chunks of one node must
                    // share a width.
                    let mut captured: Vec<Option<Value>> = Vec::new();
                    let mut width: Option<usize> = None;
                    for _ in 0..nk {
                        let chunk = decode_captured_keys(&mut r)?;
                        if *width.get_or_insert(chunk.len()) != chunk.len() {
                            return Err(CodecError::Invalid("ragged captured-key chunks"));
                        }
                        captured.extend(chunk.iter().cloned());
                    }
                    let keys = r.usize()?;
                    let mut index: FxHashMap<(usize, SymbolId, Value), Bucket<Token>> =
                        FxHashMap::default();
                    for _ in 0..keys {
                        let pos = r.usize()?;
                        let sym = SymbolId::from_index(r.u32()? as usize);
                        let value = Value::decode(&mut r)?;
                        let len = r.usize()?;
                        let mut bucket = Vec::with_capacity(len.min(1 << 20));
                        for _ in 0..len {
                            bucket.push(decode_token(&mut r)?);
                        }
                        if let Some(bucket) = Bucket::from_vec(bucket) {
                            index.insert((pos, sym, value), bucket);
                        }
                    }
                    NodeState::Mem {
                        tokens,
                        keys: captured,
                        index,
                    }
                }
                1 => {
                    let n = r.usize()?;
                    let mut entries = Vec::with_capacity(n.min(1 << 20));
                    for _ in 0..n {
                        let token = decode_token(&mut r)?;
                        let count = r.u32()?;
                        entries.push(NegEntry { token, count });
                    }
                    NodeState::Neg(entries)
                }
                2 => NodeState::Stateless,
                _ => return Err(CodecError::Invalid("bad node-state tag")),
            });
        }
        if !r.is_done() {
            return Err(CodecError::Invalid("trailing bytes after snapshot"));
        }

        let mut matcher = ReteMatcher::from_network(network);
        matcher.alpha_mems = alpha_mems;
        matcher.alpha_index = alpha_index;
        matcher.memory = memory;
        matcher.states = states;
        matcher.stats = stats;
        Ok(matcher)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::{parse_program, parse_wme, Change, Matcher, SymbolTable, WorkingMemory};

    const SRC: &str = "(p r1 (a ^x <v>) - (b ^y <v>) (c ^z <v>) --> (halt))\n\
                       (p r2 (a ^x <v>) (c ^z <v>) --> (remove 1))";

    fn build_state(
        hashed: bool,
    ) -> (
        ReteMatcher,
        WorkingMemory,
        SymbolTable,
        Vec<ops5::WmeId>,
        ops5::Program,
    ) {
        let program = parse_program(SRC).unwrap();
        let mut m = if hashed {
            ReteMatcher::compile_hashed(&program).unwrap()
        } else {
            ReteMatcher::compile_linear(&program).unwrap()
        };
        let mut wm = WorkingMemory::new();
        let mut syms = program.symbols.clone();
        let mut ids = Vec::new();
        for src in ["(a ^x 1)", "(c ^z 1)", "(b ^y 2)", "(a ^x 2)", "(c ^z 2)"] {
            let (id, _) = wm.add(parse_wme(src, &mut syms).unwrap());
            m.process(&wm, &[Change::Add(id)]);
            ids.push(id);
        }
        (m, wm, syms, ids, program)
    }

    #[test]
    fn roundtrip_preserves_state_and_future_behavior() {
        for hashed in [false, true] {
            let (mut live, mut wm, mut syms, _ids, _program) = build_state(hashed);
            let snap = live.snapshot();
            let mut restored = ReteMatcher::restore(live.network().clone(), &snap).unwrap();
            assert_eq!(restored.resident_tokens(), live.resident_tokens());
            assert_eq!(restored.stats(), live.stats());
            assert_eq!(
                restored.snapshot().as_bytes(),
                snap.as_bytes(),
                "snapshot of a restored matcher is byte-identical"
            );

            // Both matchers process the same future change identically.
            let (id, _) = wm.add(parse_wme("(b ^y 1)", &mut syms).unwrap());
            let mut d1 = live.process(&wm, &[Change::Add(id)]);
            let mut d2 = restored.process(&wm, &[Change::Add(id)]);
            d1.canonicalize();
            d2.canonicalize();
            assert_eq!(d1, d2);
            assert_eq!(
                restored.snapshot().as_bytes(),
                live.snapshot().as_bytes(),
                "states stay byte-identical after further changes"
            );
        }
    }

    #[test]
    fn restore_rejects_mismatched_network() {
        let (live, ..) = build_state(false);
        let snap = live.snapshot();
        let other = parse_program("(p q (z ^w 1) --> (halt))").unwrap();
        let network = Arc::new(Network::compile(&other).unwrap());
        assert!(matches!(
            ReteMatcher::restore(network, &snap),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn restore_rejects_corrupt_bytes() {
        let (live, ..) = build_state(false);
        let mut bytes = live.snapshot().as_bytes().to_vec();
        bytes.truncate(bytes.len() / 2);
        assert!(
            ReteMatcher::restore(live.network().clone(), &ReteSnapshot::from_bytes(bytes)).is_err()
        );
    }
}
