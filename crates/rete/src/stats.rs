//! Aggregate instrumentation counters, always on (cheap).

/// Work counters accumulated by a matcher run.
///
/// These feed the Section 3.1 cost-model calibration (`c1` = average
/// instructions per working-memory change for Rete) and the experiment
/// reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Working-memory changes processed.
    pub changes: u64,
    /// Inserts among them.
    pub inserts: u64,
    /// Constant (alpha) tests evaluated.
    pub constant_tests: u64,
    /// Alpha-memory insert/delete operations.
    pub alpha_mem_ops: u64,
    /// Right activations of two-input nodes (join + negative).
    pub right_activations: u64,
    /// Left activations of two-input nodes (join + negative).
    pub left_activations: u64,
    /// Join-test evaluations (variable binding comparisons).
    pub join_tests: u64,
    /// Opposite-memory entries scanned during two-input activations.
    pub pairs_scanned: u64,
    /// Beta-memory insert/delete operations.
    pub beta_mem_ops: u64,
    /// Tokens created (join outputs).
    pub tokens_created: u64,
    /// Conflict-set insertions/deletions emitted by terminal nodes.
    pub conflict_changes: u64,
    /// Peak total tokens resident across all beta memories.
    pub peak_tokens: u64,
    /// Tokens currently resident (internal bookkeeping for `peak_tokens`).
    pub live_tokens: u64,
    /// Deletions of tokens that were absent from the targeted memory.
    ///
    /// A non-zero count means a retraction propagated to a node that held
    /// no matching state — the signature of a stale index or a divergent
    /// working-memory view. Healthy runs keep this at zero; the chaos and
    /// failover suites gate on it via the `rete.token.phantom_removes`
    /// metric.
    pub phantom_removes: u64,
}

impl MatchStats {
    /// Total node activations (the paper's task count).
    pub fn node_activations(&self) -> u64 {
        self.alpha_mem_ops
            + self.right_activations
            + self.left_activations
            + self.beta_mem_ops
            + self.conflict_changes
    }

    /// Mean two-input activations per change.
    pub fn activations_per_change(&self) -> f64 {
        if self.changes == 0 {
            0.0
        } else {
            self.node_activations() as f64 / self.changes as f64
        }
    }

    /// Record a token becoming resident.
    pub fn token_added(&mut self) {
        self.live_tokens += 1;
        self.peak_tokens = self.peak_tokens.max(self.live_tokens);
    }

    /// Record a token leaving residency.
    pub fn token_removed(&mut self) {
        self.live_tokens = self.live_tokens.saturating_sub(1);
    }

    /// Folds the counters of `other` into `self`, for combining
    /// per-worker or per-partition stats after a parallel run.
    ///
    /// All flow counters add. `live_tokens` adds too: each worker's
    /// resident tokens are disjoint, so the union is the sum.
    /// `peak_tokens` also adds — workers peak at different moments,
    /// so the sum of per-worker peaks is a conservative upper bound
    /// on the true global peak (taking the max instead would
    /// under-report whenever more than one worker holds tokens).
    /// Saturating adds keep the fold associative even at the limits.
    ///
    /// Associative and commutative, with `MatchStats::default()` as
    /// the identity.
    pub fn merge(&mut self, other: &MatchStats) {
        self.changes = self.changes.saturating_add(other.changes);
        self.inserts = self.inserts.saturating_add(other.inserts);
        self.constant_tests = self.constant_tests.saturating_add(other.constant_tests);
        self.alpha_mem_ops = self.alpha_mem_ops.saturating_add(other.alpha_mem_ops);
        self.right_activations = self
            .right_activations
            .saturating_add(other.right_activations);
        self.left_activations = self.left_activations.saturating_add(other.left_activations);
        self.join_tests = self.join_tests.saturating_add(other.join_tests);
        self.pairs_scanned = self.pairs_scanned.saturating_add(other.pairs_scanned);
        self.beta_mem_ops = self.beta_mem_ops.saturating_add(other.beta_mem_ops);
        self.tokens_created = self.tokens_created.saturating_add(other.tokens_created);
        self.conflict_changes = self.conflict_changes.saturating_add(other.conflict_changes);
        self.peak_tokens = self.peak_tokens.saturating_add(other.peak_tokens);
        self.live_tokens = self.live_tokens.saturating_add(other.live_tokens);
        self.phantom_removes = self.phantom_removes.saturating_add(other.phantom_removes);
    }

    /// [`MatchStats::merge`] over any number of partial stats.
    pub fn merged<'a, I: IntoIterator<Item = &'a MatchStats>>(parts: I) -> MatchStats {
        let mut total = MatchStats::default();
        for p in parts {
            total.merge(p);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_totals() {
        let s = MatchStats {
            alpha_mem_ops: 2,
            right_activations: 3,
            left_activations: 4,
            beta_mem_ops: 5,
            conflict_changes: 1,
            changes: 5,
            ..MatchStats::default()
        };
        assert_eq!(s.node_activations(), 15);
        assert!((s.activations_per_change() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_changes_no_divide() {
        assert_eq!(MatchStats::default().activations_per_change(), 0.0);
    }

    #[test]
    fn peak_tokens_tracks_high_water() {
        let mut s = MatchStats::default();
        s.token_added();
        s.token_added();
        s.token_removed();
        s.token_added();
        assert_eq!(s.live_tokens, 2);
        assert_eq!(s.peak_tokens, 2);
        s.token_removed();
        s.token_removed();
        s.token_removed(); // saturates, no underflow
        assert_eq!(s.live_tokens, 0);
        assert_eq!(s.peak_tokens, 2);
    }

    #[test]
    fn merge_is_associative_with_identity() {
        let mk = |changes, peak, live| MatchStats {
            changes,
            join_tests: changes * 3,
            peak_tokens: peak,
            live_tokens: live,
            ..MatchStats::default()
        };
        let (a, b, c) = (mk(2, 5, 1), mk(3, 7, 0), mk(4, 1, 1));

        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right);
        assert_eq!(left, MatchStats::merged([&a, &b, &c]));

        let mut with_id = a;
        with_id.merge(&MatchStats::default());
        assert_eq!(with_id, a);

        assert_eq!(left.changes, 9);
        assert_eq!(left.live_tokens, 2);
        // Sum of per-worker peaks: conservative upper bound, and
        // never below the merged live count.
        assert_eq!(left.peak_tokens, 13);
        assert!(left.peak_tokens >= left.live_tokens);
    }

    #[test]
    fn merge_saturates_instead_of_overflowing() {
        let mut a = MatchStats {
            peak_tokens: u64::MAX - 1,
            ..MatchStats::default()
        };
        a.merge(&MatchStats {
            peak_tokens: 5,
            ..MatchStats::default()
        });
        assert_eq!(a.peak_tokens, u64::MAX);
    }
}
