//! Aggregate instrumentation counters, always on (cheap).

/// Work counters accumulated by a matcher run.
///
/// These feed the Section 3.1 cost-model calibration (`c1` = average
/// instructions per working-memory change for Rete) and the experiment
/// reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Working-memory changes processed.
    pub changes: u64,
    /// Inserts among them.
    pub inserts: u64,
    /// Constant (alpha) tests evaluated.
    pub constant_tests: u64,
    /// Alpha-memory insert/delete operations.
    pub alpha_mem_ops: u64,
    /// Right activations of two-input nodes (join + negative).
    pub right_activations: u64,
    /// Left activations of two-input nodes (join + negative).
    pub left_activations: u64,
    /// Join-test evaluations (variable binding comparisons).
    pub join_tests: u64,
    /// Opposite-memory entries scanned during two-input activations.
    pub pairs_scanned: u64,
    /// Beta-memory insert/delete operations.
    pub beta_mem_ops: u64,
    /// Tokens created (join outputs).
    pub tokens_created: u64,
    /// Conflict-set insertions/deletions emitted by terminal nodes.
    pub conflict_changes: u64,
    /// Peak total tokens resident across all beta memories.
    pub peak_tokens: u64,
    /// Tokens currently resident (internal bookkeeping for `peak_tokens`).
    pub live_tokens: u64,
}

impl MatchStats {
    /// Total node activations (the paper's task count).
    pub fn node_activations(&self) -> u64 {
        self.alpha_mem_ops
            + self.right_activations
            + self.left_activations
            + self.beta_mem_ops
            + self.conflict_changes
    }

    /// Mean two-input activations per change.
    pub fn activations_per_change(&self) -> f64 {
        if self.changes == 0 {
            0.0
        } else {
            self.node_activations() as f64 / self.changes as f64
        }
    }

    /// Record a token becoming resident.
    pub fn token_added(&mut self) {
        self.live_tokens += 1;
        self.peak_tokens = self.peak_tokens.max(self.live_tokens);
    }

    /// Record a token leaving residency.
    pub fn token_removed(&mut self) {
        self.live_tokens = self.live_tokens.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_totals() {
        let s = MatchStats {
            alpha_mem_ops: 2,
            right_activations: 3,
            left_activations: 4,
            beta_mem_ops: 5,
            conflict_changes: 1,
            changes: 5,
            ..MatchStats::default()
        };
        assert_eq!(s.node_activations(), 15);
        assert!((s.activations_per_change() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_changes_no_divide() {
        assert_eq!(MatchStats::default().activations_per_change(), 0.0);
    }

    #[test]
    fn peak_tokens_tracks_high_water() {
        let mut s = MatchStats::default();
        s.token_added();
        s.token_added();
        s.token_removed();
        s.token_added();
        assert_eq!(s.live_tokens, 2);
        assert_eq!(s.peak_tokens, 2);
        s.token_removed();
        s.token_removed();
        s.token_removed(); // saturates, no underflow
        assert_eq!(s.live_tokens, 0);
        assert_eq!(s.peak_tokens, 2);
    }
}
