//! Tokens: partial matches flowing through the beta network.

use std::fmt;
use std::sync::Arc;

use ops5::WmeId;

/// A token: the WMEs matching a prefix of a production's positive
/// condition elements, in condition-element order.
///
/// The paper (Section 2.2): *"Each token consists of a list of pointers
/// to working memory elements that match a subsequence of condition
/// elements in a left-hand side."* Negated condition elements contribute
/// no entry.
///
/// Storage is a shared immutable pool allocation (`Arc<[WmeId]>`): a
/// token's WME list is written once at creation and then referenced from
/// every memory, hash-index bucket, trace record, and conflict-set
/// instantiation that mentions it. Cloning bumps a refcount instead of
/// copying the list, so the hash-indexed memories (which hold each token
/// in both the residency list and its index bucket) do not multiply
/// allocation churn. The allocation is freed when the last reference
/// drops — there is no separate arena to reset, so snapshot/restore and
/// partial retract never dangle.
#[derive(Debug, Clone, Eq, Hash, Default)]
pub struct Token(Arc<[WmeId]>);

impl PartialEq for Token {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        // Retractions carry clones of the originally-inserted token, so
        // memory-removal scans almost always compare a token against an
        // `Arc` sharing its own pool allocation. Pointer identity settles
        // those in two loads; only distinct allocations fall through to
        // the slice compare.
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Token {
    /// The empty token fed to the top of the network (matches the empty
    /// prefix of every production).
    pub fn top() -> Self {
        Token::default()
    }

    /// Creates a token from WMEs in CE order.
    pub fn from_wmes(wmes: Vec<WmeId>) -> Self {
        Token(wmes.into())
    }

    /// Extends the token with the WME matching the next positive CE.
    /// The parent's storage is shared, not mutated: the extension is a
    /// fresh pool allocation referencing the same prefix WMEs.
    pub fn extended(&self, wme: WmeId) -> Token {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.extend_from_slice(&self.0);
        v.push(wme);
        Token(v.into())
    }

    /// The WME at positive-CE position `i`.
    pub fn wme_at(&self, i: usize) -> Option<WmeId> {
        self.0.get(i).copied()
    }

    /// All WMEs, in CE order.
    pub fn wmes(&self) -> &[WmeId] {
        &self.0
    }

    /// Consumes the token, yielding its WME list.
    pub fn into_wmes(self) -> Vec<WmeId> {
        self.0.to_vec()
    }

    /// Number of matched positive CEs.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the top token.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether the token references `wme`.
    pub fn contains(&self, wme: WmeId) -> bool {
        self.0.contains(&wme)
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, w) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{w}")?;
        }
        write!(f, ">")
    }
}

/// Sign of a change flowing through the network: assertion or retraction.
///
/// Retractions traverse the same paths as assertions and delete the
/// matching state — the deletion strategy of the original Rete
/// implementations (DESIGN.md §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Assertion: insert state, add instantiations.
    Plus,
    /// Retraction: delete state, remove instantiations.
    Minus,
}

impl Sign {
    /// True for `Plus`.
    pub fn is_plus(self) -> bool {
        matches!(self, Sign::Plus)
    }
}

impl fmt::Display for Sign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Sign::Plus => "+",
            Sign::Minus => "-",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(i: usize) -> WmeId {
        WmeId::from_index(i)
    }

    #[test]
    fn top_token_is_empty() {
        let t = Token::top();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.wme_at(0), None);
    }

    #[test]
    fn extension_is_persistent() {
        let t = Token::top().extended(w(1));
        let t2 = t.extended(w(2));
        assert_eq!(t.len(), 1);
        assert_eq!(t2.len(), 2);
        assert_eq!(t2.wme_at(0), Some(w(1)));
        assert_eq!(t2.wme_at(1), Some(w(2)));
        assert!(t2.contains(w(1)));
        assert!(!t.contains(w(2)));
    }

    #[test]
    fn equality_is_structural() {
        let a = Token::from_wmes(vec![w(1), w(2)]);
        let b = Token::top().extended(w(1)).extended(w(2));
        assert_eq!(a, b);
        assert_eq!(a.into_wmes(), vec![w(1), w(2)]);
    }

    #[test]
    fn display_shapes() {
        assert_eq!(format!("{}", Token::top()), "<>");
        assert_eq!(format!("{}", Token::from_wmes(vec![w(3), w(5)])), "<w3 w5>");
        assert_eq!(format!("{}", Sign::Plus), "+");
        assert_eq!(format!("{}", Sign::Minus), "-");
        assert!(Sign::Plus.is_plus());
        assert!(!Sign::Minus.is_plus());
    }
}
