//! The alpha network: shared constant-test nodes and alpha memories.
//!
//! Each distinct `(class, tests)` pattern compiles to one [`AlphaNode`],
//! shared by every condition element that needs it — the paper's
//! *"when two left-hand sides require identical nodes, the compiler
//! shares part of the network rather than building duplicate nodes"*.

use ops5::{FxHashMap, PredOp, ProductionId, SymbolId, Value, Wme};

/// Handle to an alpha node (and its alpha memory) within an
/// [`AlphaNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AlphaId(pub u32);

impl AlphaId {
    /// Raw index into [`AlphaNetwork::nodes`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A within-condition-element test, evaluable against a single WME.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AlphaTest {
    /// `wme.attr OP constant` (a bare constant compiles to `Eq`).
    Const {
        /// Attribute to read.
        attr: SymbolId,
        /// Predicate operator.
        op: PredOp,
        /// Constant operand.
        value: Value,
    },
    /// `wme.attr ∈ {values}` — the `<< … >>` disjunction.
    Disj {
        /// Attribute to read.
        attr: SymbolId,
        /// Allowed constants.
        values: Vec<Value>,
    },
    /// `wme.attr OP wme.other` — intra-CE variable consistency
    /// (`(c ^a <x> ^b <> <x>)` compiles to `AttrCmp{b, Ne, a}`).
    AttrCmp {
        /// Attribute on the left of the operator.
        attr: SymbolId,
        /// Predicate operator.
        op: PredOp,
        /// Attribute whose value is the right operand.
        other: SymbolId,
    },
    /// The attribute must be present (a bare variable's only alpha-level
    /// requirement).
    Present {
        /// Attribute that must exist.
        attr: SymbolId,
    },
}

impl AlphaTest {
    /// Evaluates the test against `wme`. Missing attributes fail.
    pub fn eval(&self, wme: &Wme) -> bool {
        match self {
            AlphaTest::Const { attr, op, value } => {
                wme.get(*attr).is_some_and(|v| v.compare(*op, *value))
            }
            AlphaTest::Disj { attr, values } => wme.get(*attr).is_some_and(|v| values.contains(&v)),
            AlphaTest::AttrCmp { attr, op, other } => match (wme.get(*attr), wme.get(*other)) {
                (Some(a), Some(b)) => a.compare(*op, b),
                _ => false,
            },
            AlphaTest::Present { attr } => wme.get(*attr).is_some(),
        }
    }
}

/// One alpha node: a conjunction of [`AlphaTest`]s over a class, plus the
/// `(production, ce)` pairs subscribed to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlphaNode {
    /// Required WME class.
    pub class: SymbolId,
    /// Tests, in canonical (sorted) order.
    pub tests: Vec<AlphaTest>,
    /// Condition elements fed by this node: `(production, ce index)`.
    /// Used to compute the paper's "affected productions" measure and by
    /// the TREAT baseline.
    pub subscribers: Vec<(ProductionId, usize)>,
}

impl AlphaNode {
    /// Evaluates all tests (class is checked by the caller's index).
    pub fn eval(&self, wme: &Wme) -> bool {
        debug_assert_eq!(wme.class(), self.class);
        self.tests.iter().all(|t| t.eval(wme))
    }
}

/// The alpha network: nodes, dispatch indexes, and a structural dedup
/// table implementing node sharing.
///
/// Dispatch uses two levels, mirroring OPS5's compiled discrimination
/// network: each node with an equality-with-constant test is *homed* on
/// the bucket `(class, attr, value)` of that test, so a WME only visits
/// nodes whose indexed constant it actually carries; nodes with no
/// equality test are homed on the class-only bucket.
#[derive(Debug, Clone, Default)]
pub struct AlphaNetwork {
    /// All alpha nodes, indexed by [`AlphaId`].
    pub nodes: Vec<AlphaNode>,
    class_index: FxHashMap<SymbolId, Vec<AlphaId>>,
    /// `(class, attr, value)` → nodes homed on that constant.
    const_index: FxHashMap<(SymbolId, SymbolId, Value), Vec<AlphaId>>,
    /// Class → nodes with no equality constant to home on.
    residual_index: FxHashMap<SymbolId, Vec<AlphaId>>,
    dedup: FxHashMap<(SymbolId, Vec<AlphaTest>), AlphaId>,
}

impl AlphaNetwork {
    /// Creates an empty alpha network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or shares) the node for `(class, tests)` and subscribes
    /// `(production, ce_index)` to it. Tests are canonicalized by sorting.
    ///
    /// When `share` is false every call creates a fresh node — used to
    /// measure the cost of losing sharing under production parallelism
    /// (paper §4).
    pub fn add_pattern(
        &mut self,
        class: SymbolId,
        mut tests: Vec<AlphaTest>,
        subscriber: (ProductionId, usize),
        share: bool,
    ) -> AlphaId {
        tests.sort();
        tests.dedup();
        if share {
            if let Some(&id) = self.dedup.get(&(class, tests.clone())) {
                self.nodes[id.index()].subscribers.push(subscriber);
                return id;
            }
        }
        let id = AlphaId(self.nodes.len() as u32);
        self.dedup.insert((class, tests.clone()), id);
        // Home the node on one equality-constant bucket when possible.
        let home = tests.iter().find_map(|t| match t {
            AlphaTest::Const {
                attr,
                op: PredOp::Eq,
                value,
            } => Some((*attr, *value)),
            _ => None,
        });
        match home {
            Some((attr, value)) => self
                .const_index
                .entry((class, attr, value))
                .or_default()
                .push(id),
            None => self.residual_index.entry(class).or_default().push(id),
        }
        self.nodes.push(AlphaNode {
            class,
            tests,
            subscribers: vec![subscriber],
        });
        self.class_index.entry(class).or_default().push(id);
        id
    }

    /// Alpha nodes that could match a WME of `class`.
    pub fn candidates(&self, class: SymbolId) -> &[AlphaId] {
        self.class_index.get(&class).map_or(&[], |v| v.as_slice())
    }

    /// The node behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: AlphaId) -> &AlphaNode {
        &self.nodes[id.index()]
    }

    /// Evaluates `wme` against the candidate nodes reached through the
    /// discrimination indexes, returning the matching ids and the number
    /// of primitive tests evaluated (the constant-test work the cost
    /// model charges; one test is charged per index probe).
    pub fn matching(&self, wme: &Wme) -> (Vec<AlphaId>, u64) {
        let mut out = Vec::new();
        let tests = self.matching_into(wme, &mut out);
        (out, tests)
    }

    /// Like [`AlphaNetwork::matching`], but appends into a caller-owned
    /// buffer (cleared first) so the per-change hot path can reuse one
    /// allocation across a whole batch.
    pub fn matching_into(&self, wme: &Wme, out: &mut Vec<AlphaId>) -> u64 {
        out.clear();
        let class = wme.class();
        let mut tests_evaluated = 0u64;
        let visit = |ids: &[AlphaId], tests_evaluated: &mut u64, out: &mut Vec<AlphaId>| {
            for &id in ids {
                let node = &self.nodes[id.index()];
                // Count short-circuit evaluation like the real
                // interpreter.
                let mut ok = true;
                for t in &node.tests {
                    *tests_evaluated += 1;
                    if !t.eval(wme) {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    out.push(id);
                }
            }
        };
        for (attr, value) in wme.attrs() {
            tests_evaluated += 1; // the index probe itself
            if let Some(ids) = self.const_index.get(&(class, attr, value)) {
                visit(ids, &mut tests_evaluated, out);
            }
        }
        if let Some(ids) = self.residual_index.get(&class) {
            visit(ids, &mut tests_evaluated, out);
        }
        tests_evaluated
    }

    /// Number of alpha nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::SymbolTable;

    struct Fx {
        syms: SymbolTable,
        class: SymbolId,
        a: SymbolId,
        b: SymbolId,
    }

    fn fx() -> Fx {
        let mut syms = SymbolTable::new();
        let class = syms.intern("c");
        let a = syms.intern("a");
        let b = syms.intern("b");
        Fx { syms, class, a, b }
    }

    #[test]
    fn const_test_eval() {
        let f = fx();
        let t = AlphaTest::Const {
            attr: f.a,
            op: PredOp::Gt,
            value: Value::Int(5),
        };
        let w = Wme::new(f.class, vec![(f.a, Value::Int(7))]);
        assert!(t.eval(&w));
        let w2 = Wme::new(f.class, vec![(f.a, Value::Int(3))]);
        assert!(!t.eval(&w2));
        let w3 = Wme::new(f.class, vec![(f.b, Value::Int(7))]);
        assert!(!t.eval(&w3), "missing attribute fails");
    }

    #[test]
    fn attr_cmp_and_present() {
        let f = fx();
        let cmp = AlphaTest::AttrCmp {
            attr: f.a,
            op: PredOp::Eq,
            other: f.b,
        };
        let w = Wme::new(f.class, vec![(f.a, Value::Int(2)), (f.b, Value::Int(2))]);
        assert!(cmp.eval(&w));
        let w2 = Wme::new(f.class, vec![(f.a, Value::Int(2)), (f.b, Value::Int(3))]);
        assert!(!cmp.eval(&w2));
        let present = AlphaTest::Present { attr: f.b };
        assert!(present.eval(&w));
        let w3 = Wme::new(f.class, vec![(f.a, Value::Int(2))]);
        assert!(!present.eval(&w3));
    }

    #[test]
    fn disj_eval() {
        let f = fx();
        let mut syms = f.syms;
        let red = syms.intern("red");
        let blue = syms.intern("blue");
        let green = syms.intern("green");
        let t = AlphaTest::Disj {
            attr: f.a,
            values: vec![Value::Sym(red), Value::Sym(blue)],
        };
        assert!(t.eval(&Wme::new(f.class, vec![(f.a, Value::Sym(blue))])));
        assert!(!t.eval(&Wme::new(f.class, vec![(f.a, Value::Sym(green))])));
    }

    #[test]
    fn sharing_dedups_identical_patterns() {
        let f = fx();
        let mut net = AlphaNetwork::new();
        let tests = vec![AlphaTest::Const {
            attr: f.a,
            op: PredOp::Eq,
            value: Value::Int(1),
        }];
        let id1 = net.add_pattern(f.class, tests.clone(), (ProductionId(0), 0), true);
        let id2 = net.add_pattern(f.class, tests.clone(), (ProductionId(1), 2), true);
        assert_eq!(id1, id2);
        assert_eq!(net.len(), 1);
        assert_eq!(
            net.node(id1).subscribers,
            vec![(ProductionId(0), 0), (ProductionId(1), 2)]
        );
        // Without sharing, a fresh node appears.
        let id3 = net.add_pattern(f.class, tests, (ProductionId(2), 0), false);
        assert_ne!(id3, id1);
        assert_eq!(net.len(), 2);
    }

    #[test]
    fn canonicalization_makes_order_irrelevant() {
        let f = fx();
        let mut net = AlphaNetwork::new();
        let t1 = AlphaTest::Present { attr: f.a };
        let t2 = AlphaTest::Const {
            attr: f.b,
            op: PredOp::Eq,
            value: Value::Int(9),
        };
        let id1 = net.add_pattern(
            f.class,
            vec![t1.clone(), t2.clone()],
            (ProductionId(0), 0),
            true,
        );
        let id2 = net.add_pattern(f.class, vec![t2, t1], (ProductionId(1), 0), true);
        assert_eq!(id1, id2);
    }

    #[test]
    fn matching_dispatches_by_class_and_counts_tests() {
        let f = fx();
        let mut syms = f.syms;
        let other_class = syms.intern("other");
        let mut net = AlphaNetwork::new();
        let pass = net.add_pattern(
            f.class,
            vec![AlphaTest::Const {
                attr: f.a,
                op: PredOp::Eq,
                value: Value::Int(1),
            }],
            (ProductionId(0), 0),
            true,
        );
        let _fail = net.add_pattern(
            f.class,
            vec![AlphaTest::Const {
                attr: f.a,
                op: PredOp::Eq,
                value: Value::Int(2),
            }],
            (ProductionId(1), 0),
            true,
        );
        let _other = net.add_pattern(other_class, vec![], (ProductionId(2), 0), true);

        let w = Wme::new(f.class, vec![(f.a, Value::Int(1))]);
        let (ids, tests) = net.matching(&w);
        assert_eq!(ids, vec![pass]);
        assert_eq!(tests, 2, "one test per same-class candidate");

        let w_other = Wme::new(other_class, vec![]);
        let (ids, tests) = net.matching(&w_other);
        assert_eq!(ids.len(), 1);
        assert_eq!(tests, 0, "test-free node matches for free");
    }

    #[test]
    fn candidates_of_unknown_class_is_empty() {
        let f = fx();
        let net = AlphaNetwork::new();
        assert!(net.candidates(f.class).is_empty());
        assert!(net.is_empty());
    }
}
