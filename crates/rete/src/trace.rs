//! Node-activation trace capture.
//!
//! The paper's performance results (Section 6) come from a simulator
//! whose input is *"a detailed trace of node activations from an actual
//! run of a production system (the trace contains information about the
//! dependencies between node activations)"*. This module is that trace:
//! while the matcher runs, every node activation is recorded with its
//! spawning parent and the work it performed (tests evaluated, opposite
//! memory entries scanned, tokens emitted). The `psm-sim` crate replays
//! these traces on machine models.

use ops5::ProductionId;

/// What kind of node an activation ran on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActivationKind {
    /// Constant-test evaluation of one WME against the alpha network
    /// (one record per change, covering all candidate alpha nodes).
    ConstantTest,
    /// An alpha-memory update (insert/delete of a WME).
    AlphaMem,
    /// A two-input node activated from the right (new WME).
    JoinRight,
    /// A two-input node activated from the left (new token).
    JoinLeft,
    /// A negative node activated from the right.
    NegativeRight,
    /// A negative node activated from the left.
    NegativeLeft,
    /// A beta-memory update (insert/delete of a token).
    BetaMem,
    /// A terminal node emitting a conflict-set change.
    Terminal,
}

impl ActivationKind {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ActivationKind::ConstantTest => "const",
            ActivationKind::AlphaMem => "amem",
            ActivationKind::JoinRight => "join-R",
            ActivationKind::JoinLeft => "join-L",
            ActivationKind::NegativeRight => "neg-R",
            ActivationKind::NegativeLeft => "neg-L",
            ActivationKind::BetaMem => "bmem",
            ActivationKind::Terminal => "term",
        }
    }
}

/// One node activation: the unit of work the parallel implementation
/// schedules (average duration "only 50–100 machine instructions", §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActivationRecord {
    /// Id within the enclosing [`ChangeTrace`] (dense, starting at 0).
    pub id: u32,
    /// The activation that spawned this one (dependency edge), if any.
    pub parent: Option<u32>,
    /// Node kind.
    pub kind: ActivationKind,
    /// Node identity (alpha id or beta node id, namespaced by kind).
    pub node: u32,
    /// Primitive tests evaluated (constant tests or join tests).
    pub tests: u32,
    /// Entries of the opposite memory scanned (join/negative nodes).
    pub scanned: u32,
    /// Tokens or conflict-set changes emitted.
    pub outputs: u32,
}

/// The activations caused by one working-memory change.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChangeTrace {
    /// Whether the change was an insert (`true`) or delete.
    pub is_add: bool,
    /// Activation DAG in spawn order (parents precede children).
    pub activations: Vec<ActivationRecord>,
    /// Productions affected by this change (paper §4: a production is
    /// affected when the WME matches at least one of its CEs).
    pub affected_productions: Vec<ProductionId>,
}

impl ChangeTrace {
    /// Total primitive work units in this change.
    pub fn total_tests(&self) -> u64 {
        self.activations.iter().map(|a| a.tests as u64).sum()
    }
}

/// The change batch of one production firing (processed in parallel by
/// the paper's implementation).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleTrace {
    /// Changes in this batch.
    pub changes: Vec<ChangeTrace>,
}

/// A full run trace: one [`CycleTrace`] per `process` batch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Cycles in execution order.
    pub cycles: Vec<CycleTrace>,
}

impl Trace {
    /// Total working-memory changes in the trace.
    pub fn total_changes(&self) -> usize {
        self.cycles.iter().map(|c| c.changes.len()).sum()
    }

    /// Total node activations in the trace.
    pub fn total_activations(&self) -> usize {
        self.cycles
            .iter()
            .flat_map(|c| &c.changes)
            .map(|ch| ch.activations.len())
            .sum()
    }

    /// Mean number of affected productions per change (the paper's ~30).
    pub fn mean_affected_productions(&self) -> f64 {
        let changes: Vec<&ChangeTrace> = self.cycles.iter().flat_map(|c| &c.changes).collect();
        if changes.is_empty() {
            return 0.0;
        }
        let total: usize = changes.iter().map(|c| c.affected_productions.len()).sum();
        total as f64 / changes.len() as f64
    }

    /// Mean changes per cycle.
    pub fn mean_changes_per_cycle(&self) -> f64 {
        if self.cycles.is_empty() {
            return 0.0;
        }
        self.total_changes() as f64 / self.cycles.len() as f64
    }
}

impl Trace {
    /// Serializes the trace to a line-oriented text format, so captured
    /// runs can be archived and replayed through the simulator without
    /// regenerating the workload.
    ///
    /// Format: `C` opens a cycle; `c <+|-> p1,p2,…` opens a change with
    /// its affected productions; `a <parent|-> <kind> <node> <tests>
    /// <scanned> <outputs>` records an activation.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for cycle in &self.cycles {
            out.push_str("C\n");
            for change in &cycle.changes {
                let affected: Vec<String> = change
                    .affected_productions
                    .iter()
                    .map(|p| p.0.to_string())
                    .collect();
                let _ = writeln!(
                    out,
                    "c {} {}",
                    if change.is_add { '+' } else { '-' },
                    affected.join(",")
                );
                for a in &change.activations {
                    let parent = a.parent.map_or("-".to_string(), |p| p.to_string());
                    let _ = writeln!(
                        out,
                        "a {parent} {} {} {} {} {}",
                        a.kind.label(),
                        a.node,
                        a.tests,
                        a.scanned,
                        a.outputs
                    );
                }
            }
        }
        out
    }

    /// Parses a trace previously produced by [`Trace::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str) -> Result<Trace, String> {
        let mut trace = Trace::default();
        for (lineno, line) in text.lines().enumerate() {
            let err = |msg: &str| format!("line {}: {msg}", lineno + 1);
            let mut parts = line.split_whitespace();
            match parts.next() {
                None => continue,
                Some("C") => trace.cycles.push(CycleTrace::default()),
                Some("c") => {
                    let cycle = trace
                        .cycles
                        .last_mut()
                        .ok_or_else(|| err("change before cycle"))?;
                    let is_add = match parts.next() {
                        Some("+") => true,
                        Some("-") => false,
                        _ => return Err(err("expected + or -")),
                    };
                    let affected = match parts.next() {
                        None => Vec::new(),
                        Some(list) => list
                            .split(',')
                            .filter(|s| !s.is_empty())
                            .map(|s| {
                                s.parse::<u32>()
                                    .map(ProductionId)
                                    .map_err(|_| err("bad production id"))
                            })
                            .collect::<Result<Vec<_>, _>>()?,
                    };
                    cycle.changes.push(ChangeTrace {
                        is_add,
                        activations: Vec::new(),
                        affected_productions: affected,
                    });
                }
                Some("a") => {
                    let change = trace
                        .cycles
                        .last_mut()
                        .and_then(|c| c.changes.last_mut())
                        .ok_or_else(|| err("activation before change"))?;
                    let parent = match parts.next().ok_or_else(|| err("missing parent"))? {
                        "-" => None,
                        s => Some(s.parse::<u32>().map_err(|_| err("bad parent"))?),
                    };
                    let kind = match parts.next().ok_or_else(|| err("missing kind"))? {
                        "const" => ActivationKind::ConstantTest,
                        "amem" => ActivationKind::AlphaMem,
                        "join-R" => ActivationKind::JoinRight,
                        "join-L" => ActivationKind::JoinLeft,
                        "neg-R" => ActivationKind::NegativeRight,
                        "neg-L" => ActivationKind::NegativeLeft,
                        "bmem" => ActivationKind::BetaMem,
                        "term" => ActivationKind::Terminal,
                        other => return Err(err(&format!("unknown kind `{other}`"))),
                    };
                    let mut num = || -> Result<u32, String> {
                        parts
                            .next()
                            .ok_or_else(|| err("missing field"))?
                            .parse()
                            .map_err(|_| err("bad number"))
                    };
                    let node = num()?;
                    let tests = num()?;
                    let scanned = num()?;
                    let outputs = num()?;
                    let id = change.activations.len() as u32;
                    if let Some(p) = parent {
                        if p >= id {
                            return Err(err("parent must precede child"));
                        }
                    }
                    change.activations.push(ActivationRecord {
                        id,
                        parent,
                        kind,
                        node,
                        tests,
                        scanned,
                        outputs,
                    });
                }
                Some(other) => return Err(err(&format!("unknown record `{other}`"))),
            }
        }
        Ok(trace)
    }
}

/// Incremental trace construction driven by the matcher runtime.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    trace: Trace,
    current_cycle: Option<CycleTrace>,
    current_change: Option<ChangeTrace>,
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a new cycle (one `process` batch).
    pub fn begin_cycle(&mut self) {
        self.flush_cycle();
        self.current_cycle = Some(CycleTrace::default());
    }

    /// Opens a new change within the current cycle (opens a cycle if the
    /// runtime was driven change-by-change).
    pub fn begin_change(&mut self, is_add: bool) {
        if self.current_cycle.is_none() {
            self.current_cycle = Some(CycleTrace::default());
        }
        self.flush_change();
        self.current_change = Some(ChangeTrace {
            is_add,
            ..ChangeTrace::default()
        });
    }

    /// Records an activation, assigning and returning its id.
    pub fn record(
        &mut self,
        parent: Option<u32>,
        kind: ActivationKind,
        node: u32,
        tests: u32,
        scanned: u32,
        outputs: u32,
    ) -> u32 {
        let change = self.current_change.get_or_insert_with(ChangeTrace::default);
        let id = change.activations.len() as u32;
        change.activations.push(ActivationRecord {
            id,
            parent,
            kind,
            node,
            tests,
            scanned,
            outputs,
        });
        id
    }

    /// Sets the affected productions of the current change.
    pub fn set_affected(&mut self, affected: Vec<ProductionId>) {
        if let Some(c) = self.current_change.as_mut() {
            c.affected_productions = affected;
        }
    }

    /// Closes the current cycle.
    pub fn end_cycle(&mut self) {
        self.flush_cycle();
    }

    /// Finishes and returns the trace.
    pub fn finish(mut self) -> Trace {
        self.flush_cycle();
        self.trace
    }

    fn flush_change(&mut self) {
        if let Some(change) = self.current_change.take() {
            self.current_cycle
                .get_or_insert_with(CycleTrace::default)
                .changes
                .push(change);
        }
    }

    fn flush_cycle(&mut self) {
        self.flush_change();
        if let Some(cycle) = self.current_cycle.take() {
            if !cycle.changes.is_empty() {
                self.trace.cycles.push(cycle);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_groups_changes_into_cycles() {
        let mut b = TraceBuilder::new();
        b.begin_cycle();
        b.begin_change(true);
        let root = b.record(None, ActivationKind::ConstantTest, 0, 3, 0, 1);
        let a = b.record(Some(root), ActivationKind::AlphaMem, 0, 0, 0, 1);
        b.record(Some(a), ActivationKind::JoinRight, 1, 2, 4, 1);
        b.set_affected(vec![ProductionId(0), ProductionId(3)]);
        b.begin_change(false);
        b.record(None, ActivationKind::ConstantTest, 0, 1, 0, 0);
        b.end_cycle();
        b.begin_cycle();
        b.begin_change(true);
        b.record(None, ActivationKind::ConstantTest, 0, 1, 0, 0);
        let t = b.finish();

        assert_eq!(t.cycles.len(), 2);
        assert_eq!(t.total_changes(), 3);
        assert_eq!(t.total_activations(), 5);
        assert_eq!(t.cycles[0].changes[0].affected_productions.len(), 2);
        assert!(t.cycles[0].changes[0].is_add);
        assert!(!t.cycles[0].changes[1].is_add);
        assert!((t.mean_changes_per_cycle() - 1.5).abs() < 1e-9);
        assert!((t.mean_affected_productions() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn parent_edges_are_preserved() {
        let mut b = TraceBuilder::new();
        b.begin_change(true);
        let r = b.record(None, ActivationKind::ConstantTest, 0, 1, 0, 1);
        let c = b.record(Some(r), ActivationKind::JoinRight, 2, 1, 1, 1);
        let t = b.finish();
        let acts = &t.cycles[0].changes[0].activations;
        assert_eq!(acts[c as usize].parent, Some(r));
        assert_eq!(acts[r as usize].parent, None);
        assert_eq!(acts[0].kind.label(), "const");
    }

    #[test]
    fn empty_cycles_are_dropped() {
        let mut b = TraceBuilder::new();
        b.begin_cycle();
        b.end_cycle();
        let t = b.finish();
        assert!(t.cycles.is_empty());
        assert_eq!(t.mean_changes_per_cycle(), 0.0);
        assert_eq!(t.mean_affected_productions(), 0.0);
    }

    #[test]
    fn text_round_trip() {
        let mut b = TraceBuilder::new();
        b.begin_cycle();
        b.begin_change(true);
        let r = b.record(None, ActivationKind::ConstantTest, 0, 3, 0, 1);
        let a = b.record(Some(r), ActivationKind::AlphaMem, 2, 0, 0, 1);
        b.record(Some(a), ActivationKind::JoinRight, 5, 2, 7, 1);
        b.set_affected(vec![ProductionId(1), ProductionId(4)]);
        b.begin_change(false);
        b.record(None, ActivationKind::ConstantTest, 0, 1, 0, 0);
        b.end_cycle();
        b.begin_cycle();
        b.begin_change(true);
        let r = b.record(None, ActivationKind::ConstantTest, 0, 1, 0, 1);
        b.record(Some(r), ActivationKind::NegativeLeft, 9, 4, 2, 1);
        b.record(Some(r), ActivationKind::Terminal, 10, 0, 0, 1);
        let original = b.finish();

        let text = original.to_text();
        let parsed = Trace::from_text(&text).unwrap();
        assert_eq!(parsed, original);
        // Idempotent.
        assert_eq!(parsed.to_text(), text);
    }

    #[test]
    fn from_text_rejects_malformed_input() {
        assert!(Trace::from_text("c + 1").is_err(), "change before cycle");
        assert!(
            Trace::from_text("C\na - const 0 0 0 0").is_err(),
            "act before change"
        );
        assert!(
            Trace::from_text("C\nc + \na 5 const 0 0 0 0").is_err(),
            "forward parent"
        );
        assert!(
            Trace::from_text("C\nc + \na - wat 0 0 0 0").is_err(),
            "bad kind"
        );
        assert!(Trace::from_text("Z").is_err(), "unknown record");
        // Empty text is an empty trace.
        assert_eq!(Trace::from_text("").unwrap(), Trace::default());
    }

    #[test]
    fn change_total_tests() {
        let mut b = TraceBuilder::new();
        b.begin_change(true);
        b.record(None, ActivationKind::ConstantTest, 0, 5, 0, 1);
        b.record(None, ActivationKind::JoinRight, 1, 7, 2, 0);
        let t = b.finish();
        assert_eq!(t.cycles[0].changes[0].total_tests(), 12);
    }
}
