//! Inline-singleton hash-index buckets.
//!
//! The alpha and beta hash indexes key memories on join-test values, so
//! bucket population follows the workload's join-value selectivity —
//! and the empty-bucket pruning the indexes do on removal means a
//! heap-allocated `Vec` bucket is created and freed every time a value
//! transitions between absent and singly-present. On churn-heavy
//! workloads that malloc/free pair dominates the cost of maintaining
//! the index. `Bucket` stores the overwhelmingly common one-entry case
//! inline and only allocates once a second entry arrives.

/// A hash-index bucket: one inline entry, or a spilled vector.
///
/// Invariant: a `Many` bucket holds at least one entry while resident
/// in an index — callers prune a bucket (remove the map entry) when
/// [`Bucket::remove`] reports it drained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Bucket<T> {
    /// Exactly one entry, stored inline (no heap allocation).
    One(T),
    /// Two or more entries.
    Many(Vec<T>),
}

impl<T: PartialEq> Bucket<T> {
    /// Appends `v`, spilling to a vector on the second entry.
    pub(crate) fn push(&mut self, v: T) {
        match self {
            Bucket::Many(vec) => vec.push(v),
            Bucket::One(_) => {
                let Bucket::One(first) = std::mem::replace(self, Bucket::Many(Vec::new())) else {
                    unreachable!("just matched One");
                };
                let Bucket::Many(vec) = self else {
                    unreachable!("just replaced with Many");
                };
                vec.reserve(2);
                vec.push(first);
                vec.push(v);
            }
        }
    }

    /// Removes the first entry equal to `needle` (swap-remove order).
    /// Returns `true` when the bucket is empty afterwards — the caller
    /// must then remove it from the index to uphold the invariant.
    pub(crate) fn remove(&mut self, needle: &T) -> bool {
        match self {
            Bucket::One(v) => *v == *needle,
            Bucket::Many(vec) => {
                if let Some(pos) = vec.iter().position(|v| v == needle) {
                    vec.swap_remove(pos);
                }
                vec.is_empty()
            }
        }
    }

    /// The entries as a slice.
    pub(crate) fn as_slice(&self) -> &[T] {
        match self {
            Bucket::One(v) => std::slice::from_ref(v),
            Bucket::Many(vec) => vec,
        }
    }

    /// Number of entries.
    pub(crate) fn len(&self) -> usize {
        match self {
            Bucket::One(_) => 1,
            Bucket::Many(vec) => vec.len(),
        }
    }

    /// Builds a bucket from a decoded entry list (snapshot restore).
    /// Returns `None` for an empty list — empty buckets are never
    /// resident.
    pub(crate) fn from_vec(mut entries: Vec<T>) -> Option<Self> {
        match entries.len() {
            0 => None,
            1 => Some(Bucket::One(entries.pop().expect("one entry"))),
            _ => Some(Bucket::Many(entries)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_spills_on_second_entry() {
        let mut b = Bucket::One(1u32);
        assert_eq!(b.as_slice(), &[1]);
        b.push(2);
        b.push(3);
        assert_eq!(b.as_slice(), &[1, 2, 3]);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn remove_reports_drained() {
        let mut b = Bucket::One(7u32);
        assert!(b.remove(&7));
        let mut b = Bucket::One(7u32);
        b.push(8);
        assert!(!b.remove(&7));
        assert_eq!(b.as_slice(), &[8]);
        assert!(b.remove(&8));
    }

    #[test]
    fn from_vec_shapes() {
        assert_eq!(Bucket::<u32>::from_vec(vec![]), None);
        assert_eq!(Bucket::from_vec(vec![4u32]), Some(Bucket::One(4)));
        assert_eq!(
            Bucket::from_vec(vec![4u32, 5]),
            Some(Bucket::Many(vec![4, 5]))
        );
    }
}
