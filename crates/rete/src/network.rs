//! The compiled Rete network: beta nodes and the LHS compiler.
//!
//! The network is immutable structure; all mutable match state (alpha and
//! beta memories, negative-node counts) lives in the runtime
//! ([`crate::ReteMatcher`]) or, for the parallel engine, behind per-node
//! locks. This split is what lets one compiled network be shared by many
//! executions — including the paper's parallel one, where *"all
//! processors are capable of processing all node activations"* (§5).

use std::collections::HashMap;

use ops5::{
    ConditionElement, Error, PredOp, Production, ProductionId, Program, SymbolId, TestArg,
    ValueTest, VarId,
};

use crate::alpha::{AlphaId, AlphaNetwork, AlphaTest};

/// Handle to a beta-network node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Raw index into [`Network::nodes`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A variable-binding consistency test evaluated at a two-input node:
/// `new_wme.own_attr OP token[token_pos].token_attr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JoinTest {
    /// Attribute of the WME arriving on the right input.
    pub own_attr: SymbolId,
    /// Predicate relating the two values.
    pub op: PredOp,
    /// Position in the left token (index over positive CEs).
    pub token_pos: usize,
    /// Attribute of the token's WME at `token_pos`.
    pub token_attr: SymbolId,
}

/// The kind of a beta node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A memory node storing tokens (left input of downstream joins).
    BetaMemory,
    /// A two-input node joining a left memory with an alpha memory.
    Join,
    /// A negated-condition node: stores tokens with match counts,
    /// passing through tokens whose count is zero.
    Negative,
    /// A terminal (production) node emitting conflict-set changes.
    Terminal,
}

/// Structure of one beta node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSpec {
    /// What the node is.
    pub kind: NodeKind,
    /// Right input (Join/Negative only).
    pub alpha: Option<AlphaId>,
    /// Left input: a `BetaMemory` or `Negative` node; `None` means the
    /// dummy top node holding the single empty token.
    pub left: Option<NodeId>,
    /// Variable-binding tests (Join/Negative only).
    pub tests: Vec<JoinTest>,
    /// For terminals: the production whose instantiations this node
    /// emits. For two-input nodes: the production that *first* requested
    /// the node — exact ownership when compiled with `share: false`
    /// (used by the per-production cost attribution in `psm-sim`), an
    /// approximation under sharing.
    pub production: Option<ProductionId>,
    /// Downstream nodes activated by this node's outputs.
    pub children: Vec<NodeId>,
}

/// Compilation options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Share structurally identical alpha and beta nodes across
    /// productions (standard Rete). Disabling reproduces the sharing
    /// loss the paper charges against production-level parallelism (§4).
    pub share: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions { share: true }
    }
}

/// Aggregate structure statistics, reported by the experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Number of alpha (constant-test) nodes after sharing.
    pub alpha_nodes: usize,
    /// Alpha patterns requested before sharing.
    pub alpha_requests: usize,
    /// Beta memory nodes.
    pub beta_memories: usize,
    /// Two-input join nodes.
    pub joins: usize,
    /// Negative nodes.
    pub negatives: usize,
    /// Terminal nodes (= productions).
    pub terminals: usize,
    /// Two-input nodes requested before sharing.
    pub join_requests: usize,
}

impl NetworkStats {
    /// Fraction of two-input node requests satisfied by sharing.
    pub fn join_sharing_ratio(&self) -> f64 {
        if self.join_requests == 0 {
            0.0
        } else {
            1.0 - (self.joins + self.negatives) as f64 / self.join_requests as f64
        }
    }
}

/// A compiled Rete network.
#[derive(Debug, Clone)]
pub struct Network {
    /// The alpha (constant-test) network.
    pub alpha: AlphaNetwork,
    /// Beta nodes, indexed by [`NodeId`].
    pub nodes: Vec<NodeSpec>,
    /// For each alpha node, the Join/Negative nodes it right-activates.
    pub alpha_successors: Vec<Vec<NodeId>>,
    /// Per production: the alpha node of each CE (in full-CE order).
    pub ce_alpha: Vec<Vec<AlphaId>>,
    /// Per production: per CE, the join tests against earlier positive
    /// CEs. Exposed for the TREAT and Oflazer baselines, which reuse the
    /// compiler's test classification but not the beta topology.
    pub ce_tests: Vec<Vec<Vec<JoinTest>>>,
    /// Per production: the two-input (Join/Negative) node compiled for
    /// each CE, in full-CE order. Under sharing a node may appear in
    /// several productions' chains.
    pub prod_nodes: Vec<Vec<NodeId>>,
    /// Per production: its terminal node.
    pub prod_terminal: Vec<NodeId>,
    /// Structure statistics.
    pub stats: NetworkStats,
}

impl Network {
    /// Compiles `program` with default options (sharing on).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Semantic`] when a predicate references a variable
    /// that has no earlier binding occurrence.
    pub fn compile(program: &Program) -> Result<Network, Error> {
        Network::compile_with(program, CompileOptions::default())
    }

    /// Compiles `program` with explicit options.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Semantic`] when a predicate references a variable
    /// that has no earlier binding occurrence.
    pub fn compile_with(program: &Program, options: CompileOptions) -> Result<Network, Error> {
        let mut c = Compiler {
            alpha: AlphaNetwork::new(),
            nodes: Vec::new(),
            alpha_successors: Vec::new(),
            ce_alpha: Vec::new(),
            ce_tests: Vec::new(),
            prod_nodes: Vec::new(),
            prod_terminal: Vec::new(),
            join_dedup: HashMap::new(),
            out_mem: HashMap::new(),
            stats: NetworkStats::default(),
            share: options.share,
        };
        for production in &program.productions {
            c.compile_production(production)?;
        }
        c.stats.alpha_nodes = c.alpha.len();
        Ok(Network {
            alpha: c.alpha,
            nodes: c.nodes,
            alpha_successors: c.alpha_successors,
            ce_alpha: c.ce_alpha,
            ce_tests: c.ce_tests,
            prod_nodes: c.prod_nodes,
            prod_terminal: c.prod_terminal,
            stats: c.stats,
        })
    }

    /// The spec of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &NodeSpec {
        &self.nodes[id.index()]
    }

    /// Renders the network in Graphviz DOT format (alpha nodes as boxes,
    /// two-input nodes as ellipses, memories as cylinders, terminals as
    /// double octagons) — the picture in the paper's Figure 2-2.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), ops5::Error> {
    /// let program = ops5::parse_program(
    ///     "(p r (a ^x <v>) (b ^x <v>) --> (remove 1))",
    /// )?;
    /// let net = rete::Network::compile(&program)?;
    /// let dot = net.to_dot(&program.symbols);
    /// assert!(dot.starts_with("digraph rete"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_dot(&self, symbols: &ops5::SymbolTable) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph rete {\n  rankdir=TB;\n");
        for (i, a) in self.alpha.nodes.iter().enumerate() {
            let _ = writeln!(
                out,
                "  a{i} [shape=box, label=\"α{} {}\\n{} tests\"];",
                i,
                symbols.name(a.class),
                a.tests.len()
            );
        }
        for (i, succs) in self.alpha_successors.iter().enumerate() {
            for s in succs {
                let _ = writeln!(out, "  a{i} -> n{};", s.index());
            }
        }
        for (i, spec) in self.nodes.iter().enumerate() {
            let (shape, label) = match spec.kind {
                NodeKind::Join => ("ellipse", format!("join\\n{} tests", spec.tests.len())),
                NodeKind::Negative => ("ellipse", format!("NOT\\n{} tests", spec.tests.len())),
                NodeKind::BetaMemory => ("cylinder", "memory".to_string()),
                NodeKind::Terminal => (
                    "doubleoctagon",
                    spec.production
                        .map_or("terminal".to_string(), |p| format!("{p}")),
                ),
            };
            let _ = writeln!(out, "  n{i} [shape={shape}, label=\"{label}\"];");
            for child in &spec.children {
                let _ = writeln!(out, "  n{i} -> n{};", child.index());
            }
        }
        out.push_str("}\n");
        out
    }

    /// Iterates all beta nodes with their ids, in creation order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &NodeSpec)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, s)| (NodeId(i as u32), s))
    }

    /// Number of downstream nodes activated by `id`'s outputs.
    pub fn fan_out(&self, id: NodeId) -> usize {
        self.nodes[id.index()].children.len()
    }

    /// Number of two-input nodes right-activated by `alpha`.
    pub fn alpha_fan_out(&self, alpha: AlphaId) -> usize {
        self.alpha_successors[alpha.index()].len()
    }

    /// The two-input node compiled for each of `production`'s CEs, in
    /// full-CE order. Under sharing, prefix nodes may be shared with
    /// other productions.
    pub fn production_chain(&self, production: ProductionId) -> &[NodeId] {
        &self.prod_nodes[production.index()]
    }

    /// The terminal node of `production`.
    pub fn terminal(&self, production: ProductionId) -> NodeId {
        self.prod_terminal[production.index()]
    }

    /// Beta-chain depth of `production`: the number of two-input nodes a
    /// token traverses from the dummy top node to the terminal (equal to
    /// the production's CE count).
    pub fn beta_chain_depth(&self, production: ProductionId) -> usize {
        self.prod_nodes[production.index()].len()
    }

    /// For each beta node, the number of productions whose chain (or
    /// terminal) includes it — the sharing degree. `1` everywhere when
    /// compiled with `share: false`; memories are attributed through the
    /// joins feeding them.
    pub fn node_use_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nodes.len()];
        for (p, chain) in self.prod_nodes.iter().enumerate() {
            for id in chain {
                counts[id.index()] += 1;
                // A join's output memory serves exactly the productions
                // that use the join.
                for child in &self.nodes[id.index()].children {
                    if self.nodes[child.index()].kind == NodeKind::BetaMemory {
                        counts[child.index()] += 1;
                    }
                }
            }
            counts[self.prod_terminal[p].index()] += 1;
        }
        counts
    }

    /// Productions affected by a WME matching `alpha` — productions with
    /// at least one subscribed CE (the paper's "affected production"
    /// definition, §4).
    pub fn affected_productions(&self, alphas: &[AlphaId]) -> Vec<ProductionId> {
        let mut out: Vec<ProductionId> = alphas
            .iter()
            .flat_map(|a| self.alpha.node(*a).subscribers.iter().map(|&(p, _)| p))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Result of classifying one condition element's tests.
#[derive(Debug, Default)]
struct ClassifiedCe {
    alpha_tests: Vec<AlphaTest>,
    join_tests: Vec<JoinTest>,
    /// Bare-variable binding occurrences `(var, attr)` introduced by this
    /// CE; merged into the outer map only for positive CEs.
    new_bindings: Vec<(VarId, SymbolId)>,
}

struct Compiler {
    alpha: AlphaNetwork,
    nodes: Vec<NodeSpec>,
    alpha_successors: Vec<Vec<NodeId>>,
    ce_alpha: Vec<Vec<AlphaId>>,
    ce_tests: Vec<Vec<Vec<JoinTest>>>,
    prod_nodes: Vec<Vec<NodeId>>,
    prod_terminal: Vec<NodeId>,
    /// `(kind, left, alpha, tests)` → node, for two-input node sharing.
    join_dedup: HashMap<(NodeKind, Option<NodeId>, AlphaId, Vec<JoinTest>), NodeId>,
    /// Join node → its lazily created output beta memory.
    out_mem: HashMap<NodeId, NodeId>,
    stats: NetworkStats,
    share: bool,
}

impl Compiler {
    fn compile_production(&mut self, production: &Production) -> Result<(), Error> {
        // Variables bound by earlier positive CEs: var → (token position,
        // attribute).
        let mut outer: HashMap<VarId, (usize, SymbolId)> = HashMap::new();
        let mut positive_seen = 0usize;
        let mut cur_left: Option<NodeId> = None;
        let mut prod_alphas = Vec::with_capacity(production.ces.len());
        let mut prod_tests = Vec::with_capacity(production.ces.len());
        let mut prod_chain = Vec::with_capacity(production.ces.len());

        for (ce_index, ce) in production.ces.iter().enumerate() {
            let classified = classify_ce(ce, &outer).map_err(|msg| Error::Semantic {
                production: production.name.clone(),
                message: msg,
            })?;
            if !ce.negated {
                for &(v, attr) in &classified.new_bindings {
                    outer.entry(v).or_insert((positive_seen, attr));
                }
            }

            self.stats.alpha_requests += 1;
            let alpha_id = self.alpha.add_pattern(
                ce.class,
                classified.alpha_tests,
                (production.id, ce_index),
                self.share,
            );
            while self.alpha_successors.len() < self.alpha.len() {
                self.alpha_successors.push(Vec::new());
            }
            prod_alphas.push(alpha_id);
            prod_tests.push(classified.join_tests.clone());

            let kind = if ce.negated {
                NodeKind::Negative
            } else {
                NodeKind::Join
            };
            self.stats.join_requests += 1;
            let two_input = self.get_or_create_two_input(
                kind,
                cur_left,
                alpha_id,
                classified.join_tests,
                production.id,
            );
            prod_chain.push(two_input);

            let is_last = ce_index + 1 == production.ces.len();
            if ce.negated {
                // The negative node doubles as the left memory for the
                // next two-input node.
                cur_left = Some(two_input);
            } else {
                positive_seen += 1;
                if !is_last {
                    cur_left = Some(self.output_memory(two_input));
                }
            }
            if is_last {
                let terminal = self.new_node(NodeSpec {
                    kind: NodeKind::Terminal,
                    alpha: None,
                    left: None,
                    tests: Vec::new(),
                    production: Some(production.id),
                    children: Vec::new(),
                });
                self.stats.terminals += 1;
                self.nodes[two_input.index()].children.push(terminal);
                self.prod_terminal.push(terminal);
            }
        }

        self.ce_alpha.push(prod_alphas);
        self.ce_tests.push(prod_tests);
        self.prod_nodes.push(prod_chain);
        Ok(())
    }

    fn get_or_create_two_input(
        &mut self,
        kind: NodeKind,
        left: Option<NodeId>,
        alpha: AlphaId,
        tests: Vec<JoinTest>,
        owner: ProductionId,
    ) -> NodeId {
        let key = (kind, left, alpha, tests.clone());
        if self.share {
            if let Some(&id) = self.join_dedup.get(&key) {
                return id;
            }
        }
        let id = self.new_node(NodeSpec {
            kind,
            alpha: Some(alpha),
            left,
            tests,
            production: Some(owner),
            children: Vec::new(),
        });
        match kind {
            NodeKind::Join => self.stats.joins += 1,
            NodeKind::Negative => self.stats.negatives += 1,
            _ => unreachable!("two-input nodes are joins or negatives"),
        }
        self.join_dedup.insert(key, id);
        self.alpha_successors[alpha.index()].push(id);
        if let Some(left) = left {
            self.nodes[left.index()].children.push(id);
        }
        id
    }

    /// The beta memory fed by `join`, created on first demand.
    fn output_memory(&mut self, join: NodeId) -> NodeId {
        if let Some(&mem) = self.out_mem.get(&join) {
            return mem;
        }
        let owner = self.nodes[join.index()].production;
        let mem = self.new_node(NodeSpec {
            kind: NodeKind::BetaMemory,
            alpha: None,
            left: None,
            tests: Vec::new(),
            production: owner,
            children: Vec::new(),
        });
        self.stats.beta_memories += 1;
        self.nodes[join.index()].children.push(mem);
        self.out_mem.insert(join, mem);
        mem
    }

    fn new_node(&mut self, spec: NodeSpec) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(spec);
        id
    }
}

/// Splits a condition element's tests into alpha-level (single WME) and
/// join-level (against earlier positive CEs) tests. Bare-variable binding
/// occurrences are reported in `new_bindings`; inside negated CEs they
/// stay local (the caller simply does not merge them).
fn classify_ce(
    ce: &ConditionElement,
    outer: &HashMap<VarId, (usize, SymbolId)>,
) -> Result<ClassifiedCe, String> {
    let mut out = ClassifiedCe::default();
    // Local (within-CE) binding sites, including ones local to a negated
    // CE.
    let mut local: HashMap<VarId, SymbolId> = HashMap::new();
    for (attr, test) in &ce.tests {
        classify_test(*attr, test, outer, &mut local, &mut out)?;
    }
    Ok(out)
}

fn classify_test(
    attr: SymbolId,
    test: &ValueTest,
    outer: &HashMap<VarId, (usize, SymbolId)>,
    local: &mut HashMap<VarId, SymbolId>,
    out: &mut ClassifiedCe,
) -> Result<(), String> {
    match test {
        ValueTest::Const(v) => out.alpha_tests.push(AlphaTest::Const {
            attr,
            op: PredOp::Eq,
            value: *v,
        }),
        ValueTest::Disj(values) => out.alpha_tests.push(AlphaTest::Disj {
            attr,
            values: values.clone(),
        }),
        ValueTest::Var(v) => {
            if let Some(&local_attr) = local.get(v) {
                // Second occurrence within this CE: intra-element
                // consistency, testable at the alpha level.
                out.alpha_tests.push(AlphaTest::AttrCmp {
                    attr,
                    op: PredOp::Eq,
                    other: local_attr,
                });
            } else if let Some(&(pos, token_attr)) = outer.get(v) {
                out.join_tests.push(JoinTest {
                    own_attr: attr,
                    op: PredOp::Eq,
                    token_pos: pos,
                    token_attr,
                });
            } else {
                local.insert(*v, attr);
                out.new_bindings.push((*v, attr));
                out.alpha_tests.push(AlphaTest::Present { attr });
            }
        }
        ValueTest::Pred(op, arg) => match arg {
            TestArg::Const(c) => out.alpha_tests.push(AlphaTest::Const {
                attr,
                op: *op,
                value: *c,
            }),
            TestArg::Var(v) => {
                if let Some(&local_attr) = local.get(v) {
                    out.alpha_tests.push(AlphaTest::AttrCmp {
                        attr,
                        op: *op,
                        other: local_attr,
                    });
                } else if let Some(&(pos, token_attr)) = outer.get(v) {
                    out.join_tests.push(JoinTest {
                        own_attr: attr,
                        op: *op,
                        token_pos: pos,
                        token_attr,
                    });
                } else {
                    return Err(format!(
                        "predicate `{op}` references variable {v} before any binding occurrence"
                    ));
                }
            }
        },
        ValueTest::Conj(tests) => {
            for t in tests {
                classify_test(attr, t, outer, local, out)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::parse_program;

    fn net(src: &str) -> Network {
        Network::compile(&parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn paper_figure_2_2_network_shape() {
        let program = parse_program(
            r#"
            (p p1 (c1 ^attr1 <x> ^attr2 12)
                  (c2 ^attr1 15 ^attr2 <x>)
                  (c3 ^attr1 <x>)
                  -->
                  (modify 1 ^attr1 12))
            (p p2 (c2 ^attr1 15 ^attr2 <y>)
                  (c4 ^attr1 <y>)
                  -->
                  (remove 2))
            "#,
        )
        .unwrap();
        let n = Network::compile(&program).unwrap();
        // p1's c2 CE tests `^attr2` against an already-bound variable
        // (a join test), while p2's c2 CE *binds* `<y>` there (a Present
        // alpha test), so the two c2 patterns are distinct alpha nodes —
        // 5 requests, 5 nodes.
        assert_eq!(n.stats.alpha_requests, 5);
        assert_eq!(n.stats.alpha_nodes, 5);
        assert_eq!(n.stats.terminals, 2);
        assert_eq!(n.stats.joins, 5);
        // A WME `(c2 ^attr1 15 ^attr2 v)` matches both c2 alpha nodes,
        // so it affects both productions (the paper's affected-set
        // measure).
        let c2 = program.symbols.lookup("c2").unwrap();
        let attr1 = program.symbols.lookup("attr1").unwrap();
        let attr2 = program.symbols.lookup("attr2").unwrap();
        let wme = ops5::Wme::new(
            c2,
            vec![(attr1, ops5::Value::Int(15)), (attr2, ops5::Value::Int(3))],
        );
        let (alphas, _) = n.alpha.matching(&wme);
        assert_eq!(alphas.len(), 2);
        let affected = n.affected_productions(&alphas);
        assert_eq!(affected, vec![ProductionId(0), ProductionId(1)]);
    }

    #[test]
    fn identical_prefixes_share_joins() {
        let n = net(r#"
            (p a (g ^t x) (h ^u <v>) (i ^w <v>) --> (remove 1))
            (p b (g ^t x) (h ^u <v>) (j ^w <v>) --> (remove 1))
        "#);
        // First two joins of each production are structurally identical.
        assert_eq!(n.stats.join_requests, 6);
        assert_eq!(n.stats.joins, 4, "two joins shared");
        assert!(n.stats.join_sharing_ratio() > 0.0);
    }

    #[test]
    fn no_share_option_duplicates_everything() {
        let program = parse_program(
            r#"
            (p a (g ^t x) (h ^u <v>) --> (remove 1))
            (p b (g ^t x) (h ^u <v>) --> (remove 2))
            "#,
        )
        .unwrap();
        let shared = Network::compile(&program).unwrap();
        let unshared = Network::compile_with(&program, CompileOptions { share: false }).unwrap();
        assert!(unshared.stats.alpha_nodes > shared.stats.alpha_nodes);
        assert!(unshared.stats.joins > shared.stats.joins);
        assert_eq!(unshared.stats.join_sharing_ratio(), 0.0);
    }

    #[test]
    fn join_tests_point_at_binding_sites() {
        let n = net("(p r (a ^x <v> ^y 3) (b ^z > <v>) --> (remove 1))");
        // CE 1 compiles one join test: b.z > token[0].x
        let tests = &n.ce_tests[0][1];
        assert_eq!(tests.len(), 1);
        assert_eq!(tests[0].op, PredOp::Gt);
        assert_eq!(tests[0].token_pos, 0);
    }

    #[test]
    fn intra_ce_variable_becomes_alpha_attr_cmp() {
        let n = net("(p r (a ^x <v> ^y <v>) --> (remove 1))");
        let alpha = n.alpha.node(n.ce_alpha[0][0]);
        assert!(alpha
            .tests
            .iter()
            .any(|t| matches!(t, AlphaTest::AttrCmp { op: PredOp::Eq, .. })));
        // No join tests for a single-CE production.
        assert!(n.ce_tests[0][0].is_empty());
    }

    #[test]
    fn negated_ce_builds_negative_node() {
        let n = net("(p r (g ^s 1) - (b ^c red) --> (remove 1))");
        assert_eq!(n.stats.negatives, 1);
        assert_eq!(n.stats.joins, 1);
        // Terminal hangs off the negative node (last CE).
        let neg = n
            .nodes
            .iter()
            .position(|s| s.kind == NodeKind::Negative)
            .unwrap();
        let term_child = n.nodes[neg]
            .children
            .iter()
            .any(|c| n.node(*c).kind == NodeKind::Terminal);
        assert!(term_child);
    }

    #[test]
    fn negated_ce_local_variables_stay_local() {
        // <z> inside the negated CE must not leak into the later positive
        // CE, which binds its own <z>.
        let n = net("(p r (g ^s 1) - (b ^c <z> ^d <z>) (h ^e <z>) --> (remove 1))");
        // The h-CE has no join tests against the negated CE.
        assert!(n.ce_tests[0][2].is_empty());
        // The negated CE carries an intra-CE AttrCmp.
        let neg_alpha = n.alpha.node(n.ce_alpha[0][1]);
        assert!(neg_alpha
            .tests
            .iter()
            .any(|t| matches!(t, AlphaTest::AttrCmp { .. })));
    }

    #[test]
    fn predicate_before_binding_is_rejected() {
        let program = parse_program("(p r (a ^x > <v>) --> (halt))").unwrap();
        let err = Network::compile(&program).unwrap_err();
        assert!(err.to_string().contains("before any binding"));
    }

    #[test]
    fn negative_node_feeds_following_join() {
        let n = net("(p r (g ^s <v>) - (b ^c <v>) (h ^e <v>) --> (remove 1))");
        let neg = NodeId(
            n.nodes
                .iter()
                .position(|s| s.kind == NodeKind::Negative)
                .unwrap() as u32,
        );
        // Some join uses the negative node as its left input.
        assert!(n
            .nodes
            .iter()
            .any(|s| s.kind == NodeKind::Join && s.left == Some(neg)));
    }

    #[test]
    fn production_chain_and_terminal_introspection() {
        let n = net(r#"
            (p a (g ^t x) (h ^u <v>) (i ^w <v>) --> (remove 1))
            (p b (g ^t x) (h ^u <v>) (j ^w <v>) --> (remove 1))
        "#);
        let a = ProductionId(0);
        let b = ProductionId(1);
        assert_eq!(n.beta_chain_depth(a), 3);
        assert_eq!(n.beta_chain_depth(b), 3);
        // Shared two-CE prefix: same first two chain nodes.
        assert_eq!(n.production_chain(a)[..2], n.production_chain(b)[..2]);
        assert_ne!(n.production_chain(a)[2], n.production_chain(b)[2]);
        // Terminals are distinct and of the right kind.
        assert_ne!(n.terminal(a), n.terminal(b));
        assert_eq!(n.node(n.terminal(a)).kind, NodeKind::Terminal);
        assert_eq!(
            n.node(n.terminal(a)).production,
            Some(a),
            "terminal carries its production"
        );
        // Shared prefix nodes are used by both productions.
        let counts = n.node_use_counts();
        assert_eq!(counts[n.production_chain(a)[0].index()], 2);
        assert_eq!(counts[n.production_chain(a)[2].index()], 1);
        // iter covers every node exactly once.
        assert_eq!(n.iter().count(), n.nodes.len());
        // The last join of each production fans out to its terminal only.
        assert_eq!(n.fan_out(n.production_chain(a)[2]), 1);
        // Each alpha feeding the shared prefix right-activates one node.
        assert!(n.alpha_fan_out(n.ce_alpha[0][0]) >= 1);
    }

    #[test]
    fn unshared_chains_are_disjoint() {
        let program = parse_program(
            r#"
            (p a (g ^t x) (h ^u <v>) --> (remove 1))
            (p b (g ^t x) (h ^u <v>) --> (remove 1))
            "#,
        )
        .unwrap();
        let n = Network::compile_with(&program, CompileOptions { share: false }).unwrap();
        let counts = n.node_use_counts();
        assert!(counts.iter().all(|&c| c == 1), "no sharing: {counts:?}");
        let a: std::collections::HashSet<_> = n.production_chain(ProductionId(0)).iter().collect();
        assert!(n
            .production_chain(ProductionId(1))
            .iter()
            .all(|x| !a.contains(x)));
    }

    #[test]
    fn conjunction_splits_into_alpha_and_join_tests() {
        let n = net("(p r (a ^x <v>) (b ^y { > 0 <v> }) --> (remove 1))");
        let alpha = n.alpha.node(n.ce_alpha[0][1]);
        assert!(alpha
            .tests
            .iter()
            .any(|t| matches!(t, AlphaTest::Const { op: PredOp::Gt, .. })));
        assert_eq!(n.ce_tests[0][1].len(), 1, "the <v> equality is a join test");
    }
}
