//! Per-node and per-kind activation-time profiling for the sequential
//! matcher.
//!
//! Off by default: [`crate::ReteMatcher::enable_profiling`] allocates a
//! [`MatchProfile`] and from then on every node activation is timed
//! (two clock reads per activation) and recorded into a per-node total
//! and a per-[`ActivationKind`] log2 histogram from `psm-obs`. The
//! top-K query answers the question the paper's §3 cost model asks of
//! real data: *which* nodes dominate match time.

use psm_obs::{Histogram, HistogramSnapshot};

use crate::trace::ActivationKind;

/// All activation kinds, in discriminant order (used as array index).
pub const KINDS: [ActivationKind; 8] = [
    ActivationKind::ConstantTest,
    ActivationKind::AlphaMem,
    ActivationKind::JoinRight,
    ActivationKind::JoinLeft,
    ActivationKind::NegativeRight,
    ActivationKind::NegativeLeft,
    ActivationKind::BetaMem,
    ActivationKind::Terminal,
];

/// Accumulated cost of one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeCost {
    /// Activations executed at this node.
    pub count: u64,
    /// Total nanoseconds spent in them.
    pub total_ns: u64,
}

/// One row of [`MatchProfile::hot_nodes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotNode {
    /// Beta-network node id.
    pub node: u32,
    /// Activations executed at this node.
    pub count: u64,
    /// Total nanoseconds spent in them.
    pub total_ns: u64,
}

/// Activation-time profile: per-node totals plus per-kind histograms.
#[derive(Debug)]
pub struct MatchProfile {
    kinds: [Histogram; KINDS.len()],
    nodes: Vec<NodeCost>,
}

impl MatchProfile {
    /// An empty profile sized for `n_nodes` beta-network nodes.
    pub fn new(n_nodes: usize) -> Self {
        MatchProfile {
            kinds: std::array::from_fn(|_| Histogram::default()),
            nodes: vec![NodeCost::default(); n_nodes],
        }
    }

    /// Records one activation of `node` with kind `kind` taking `ns`.
    #[inline]
    pub fn record(&mut self, kind: ActivationKind, node: u32, ns: u64) {
        self.kinds[kind as usize].record(ns);
        if let Some(slot) = self.nodes.get_mut(node as usize) {
            slot.count += 1;
            slot.total_ns += ns;
        }
    }

    /// Snapshot of the latency histogram for `kind`.
    pub fn kind_snapshot(&self, kind: ActivationKind) -> HistogramSnapshot {
        self.kinds[kind as usize].snapshot()
    }

    /// Per-node accumulated costs, indexed by node id.
    pub fn node_costs(&self) -> &[NodeCost] {
        &self.nodes
    }

    /// The `k` nodes with the largest total activation time,
    /// descending.
    pub fn hot_nodes(&self, k: usize) -> Vec<HotNode> {
        let mut rows: Vec<HotNode> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, c)| c.count > 0)
            .map(|(i, c)| HotNode {
                node: i as u32,
                count: c.count,
                total_ns: c.total_ns,
            })
            .collect();
        rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.node.cmp(&b.node)));
        rows.truncate(k);
        rows
    }

    /// Total nanoseconds across all recorded activations.
    pub fn total_ns(&self) -> u64 {
        self.nodes.iter().map(|c| c.total_ns).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_nodes_sorted_and_truncated() {
        let mut p = MatchProfile::new(4);
        p.record(ActivationKind::JoinRight, 0, 10);
        p.record(ActivationKind::JoinRight, 2, 100);
        p.record(ActivationKind::BetaMem, 2, 50);
        p.record(ActivationKind::Terminal, 3, 5);
        let hot = p.hot_nodes(2);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].node, 2);
        assert_eq!(hot[0].count, 2);
        assert_eq!(hot[0].total_ns, 150);
        assert_eq!(hot[1].node, 0);
        assert_eq!(p.total_ns(), 165);
        assert_eq!(p.kind_snapshot(ActivationKind::JoinRight).count, 2);
        assert_eq!(p.kind_snapshot(ActivationKind::NegativeLeft).count, 0);
    }

    #[test]
    fn out_of_range_node_still_counts_kind() {
        let mut p = MatchProfile::new(1);
        p.record(ActivationKind::ConstantTest, 99, 7);
        assert_eq!(p.kind_snapshot(ActivationKind::ConstantTest).count, 1);
        assert_eq!(p.total_ns(), 0);
    }

    #[test]
    fn kinds_cover_every_discriminant() {
        for (i, k) in KINDS.iter().enumerate() {
            assert_eq!(*k as usize, i);
        }
    }
}
