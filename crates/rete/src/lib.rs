//! # rete — the Rete match network (Forgy 1982) with instrumentation
//!
//! Implements the match algorithm of Section 2.2 of Gupta, Forgy, Newell
//! & Wedig (ISCA 1986): a data-flow network compiled from production
//! left-hand sides, with
//!
//! * **constant-test (alpha) nodes** shared across productions,
//! * **memory nodes** storing match state between recognize–act cycles,
//! * **two-input (join) nodes** testing joint satisfaction with variable
//!   binding consistency,
//! * **negative nodes** for negated condition elements, and
//! * **terminal nodes** emitting conflict-set changes.
//!
//! Working-memory changes are processed as **node activations** pulled
//! from an explicit task queue — the same unit of work the paper's
//! parallel implementation schedules across processors — so the
//! sequential matcher, the parallel matcher (`psm-core`), and the
//! trace-driven simulator (`psm-sim`) all agree on what an activation is.
//!
//! ## Example
//!
//! ```
//! use ops5::{parse_program, parse_wme, Interpreter};
//! use rete::ReteMatcher;
//!
//! # fn main() -> Result<(), ops5::Error> {
//! let program = parse_program(
//!     "(p rule (a ^x <v>) (b ^y <v>) --> (remove 1))",
//! )?;
//! let matcher = ReteMatcher::compile(&program)?;
//! let mut interp = Interpreter::new(program, matcher);
//! let mut syms = interp.program().symbols.clone();
//! interp.insert(parse_wme("(a ^x 7)", &mut syms)?);
//! interp.insert(parse_wme("(b ^y 7)", &mut syms)?);
//! assert_eq!(interp.run(10)?, 1);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod alpha;
mod bucket;
pub mod network;
pub mod profile;
pub mod runtime;
pub mod snapshot;
pub mod stats;
pub mod token;
pub mod trace;

pub use alpha::{AlphaId, AlphaNetwork, AlphaNode, AlphaTest};
pub use network::{CompileOptions, JoinTest, Network, NetworkStats, NodeId, NodeSpec};
pub use profile::{HotNode, MatchProfile, NodeCost};
pub use runtime::{profile_kind, MemoryStrategy, ReteMatcher};
pub use snapshot::ReteSnapshot;
pub use stats::MatchStats;
pub use token::Token;
pub use trace::{ActivationKind, ActivationRecord, ChangeTrace, CycleTrace, Trace, TraceBuilder};
