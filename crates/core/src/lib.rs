//! # psm-core — the parallel Rete engine
//!
//! The paper's primary contribution (Sections 4–5): exploit parallelism
//! in the Rete algorithm at the granularity of **node activations**, on a
//! shared-memory multiprocessor. This crate is the real-multicore
//! realization of that design:
//!
//! * [`ParallelReteMatcher`] — node-activation parallelism. Every
//!   two-input node owns its (private, lock-protected) left and right
//!   memories; an activation locks only the node it runs on, so multiple
//!   activations of *different* nodes and multiple activations of the
//!   *same* node's siblings proceed concurrently, and multiple
//!   working-memory changes from one firing are processed in parallel —
//!   the three parallelism sources of §4. A work-stealing deque pool
//!   plays the role of the paper's hardware task scheduler.
//! * [`ProductionParallelMatcher`] — the coarse-grain alternative the
//!   paper rejects: productions are partitioned, each partition matched
//!   sequentially, partitions in parallel, with no sharing across
//!   partitions. Benchmarks on the two engines reproduce the §4
//!   granularity argument on real hardware.
//!
//! Both implement [`ops5::Matcher`] and produce deltas identical to the
//! sequential [`rete::ReteMatcher`] (cross-checked in tests).
//!
//! ## Consistency protocol
//!
//! Within a change batch, retractions are processed (in parallel) to
//! completion before assertions start — a remove/add barrier. Within a
//! phase, each activation's *insert + opposite-memory scan* is atomic
//! under the node's lock, and memory entries are signed counts, so a
//! token deletion racing ahead of its own creation (possible downstream
//! of negative nodes) leaves a debt that the later creation cancels.
//! Conflict-set deltas are signed multisets with the same cancellation,
//! making the final delta independent of the parallel schedule.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod engine;
pub mod pool;
pub mod production_parallel;
pub mod topology;

pub use engine::{
    FaultAction, FaultInjector, ParallelOptions, ParallelReteMatcher, ParallelStats, WorkerStats,
};
pub use pool::{PoolStats, WorkerPool};
pub use production_parallel::ProductionParallelMatcher;
pub use topology::ParallelTopology;
