//! Production-level (coarse-grain) parallelism — the alternative the
//! paper examines and rejects in Section 4.
//!
//! Productions are partitioned; each partition is matched by its own
//! sequential Rete network, and partitions run in parallel on each
//! change. No communication is needed between partitions (the scheme's
//! advertised advantage), but:
//!
//! * node sharing across partitions is lost (each partition compiles its
//!   own network), and
//! * the speed-up is bounded by the most expensive affected partition —
//!   the processing-variance problem that caps production parallelism at
//!   about 5-fold in the paper's measurements.
//!
//! The per-partition work counters let experiments measure both effects
//! directly on real hardware.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use ops5::{Change, Error, MatchDelta, Matcher, Program, WmeId, WorkingMemory};
use psm_obs::Obs;
use rete::{MatchStats, ReteMatcher};

/// A matcher exploiting parallelism only across productions.
///
/// # Examples
///
/// ```
/// use ops5::{parse_program, parse_wme, Interpreter};
/// use psm_core::ProductionParallelMatcher;
///
/// # fn main() -> Result<(), ops5::Error> {
/// let program = parse_program(
///     "(p r1 (a ^x 1) --> (remove 1)) (p r2 (a ^x 2) --> (remove 1))",
/// )?;
/// let matcher = ProductionParallelMatcher::compile(&program, 2)?;
/// let mut interp = Interpreter::new(program, matcher);
/// let mut syms = interp.program().symbols.clone();
/// interp.insert(parse_wme("(a ^x 1)", &mut syms)?);
/// assert_eq!(interp.run(10)?, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ProductionParallelMatcher {
    partitions: Vec<ReteMatcher>,
    /// Wall time of the slowest partition per batch, summed (the §4
    /// critical path); collected when an [`Obs`] handle is attached.
    obs: Option<Arc<Obs>>,
}

impl ProductionParallelMatcher {
    /// Partitions `program` round-robin into `n_partitions` sequential
    /// Rete matchers.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Semantic`] if any partition fails to compile.
    pub fn compile(program: &Program, n_partitions: usize) -> Result<Self, Error> {
        let n = n_partitions.clamp(1, program.productions.len().max(1));
        let mut partitions = Vec::with_capacity(n);
        for k in 0..n {
            // Sub-programs keep the original ProductionIds so emitted
            // instantiations are globally meaningful. (Positional lookups
            // like `Program::production` must not be used on these.)
            let sub = Program {
                symbols: program.symbols.clone(),
                productions: program
                    .productions
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % n == k)
                    .map(|(_, p)| p.clone())
                    .collect(),
                literalizations: program.literalizations.clone(),
            };
            partitions.push(ReteMatcher::compile(&sub)?);
        }
        Ok(ProductionParallelMatcher {
            partitions,
            obs: None,
        })
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Per-partition work counters — the imbalance across these is the
    /// §4 variance argument made measurable.
    pub fn partition_stats(&self) -> Vec<MatchStats> {
        self.partitions.iter().map(|p| p.stats()).collect()
    }

    /// All partition counters folded into one via
    /// [`MatchStats::merge`] — the whole-system view a sequential
    /// matcher would report.
    pub fn merged_stats(&self) -> MatchStats {
        let parts = self.partition_stats();
        MatchStats::merged(parts.iter())
    }

    /// Attaches an observability handle: per-batch partition wall
    /// times land in the `pp.partition_ns` histogram and the
    /// `pp.batches` / `pp.critical_path_ns` counters.
    pub fn attach_obs(&mut self, obs: Arc<Obs>) {
        self.obs = Some(obs);
    }

    /// Coefficient of imbalance: max over mean of per-partition node
    /// activations (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let work: Vec<u64> = self
            .partitions
            .iter()
            .map(|p| p.stats().node_activations())
            .collect();
        let max = *work.iter().max().unwrap_or(&0) as f64;
        let mean = work.iter().sum::<u64>() as f64 / work.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    fn run(&mut self, wm: &WorkingMemory, changes: &[Change]) -> MatchDelta {
        let merged = Mutex::new(MatchDelta::new());
        let timed = self.obs.is_some();
        let partition_ns: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for partition in self.partitions.iter_mut() {
                let (merged, partition_ns) = (&merged, &partition_ns);
                scope.spawn(move || {
                    let started = timed.then(Instant::now);
                    let delta = partition.process(wm, changes);
                    if let Some(t0) = started {
                        partition_ns
                            .lock()
                            .unwrap()
                            .push(t0.elapsed().as_nanos() as u64);
                    }
                    merged.lock().unwrap().merge(delta);
                });
            }
        });
        if let Some(obs) = &self.obs {
            let times = partition_ns.into_inner().unwrap();
            let hist = obs.metrics.histogram("pp.partition_ns");
            for &ns in &times {
                hist.record(ns);
            }
            obs.metrics.counter("pp.batches").inc();
            obs.metrics
                .counter("pp.critical_path_ns")
                .add(times.iter().copied().max().unwrap_or(0));
        }
        merged.into_inner().unwrap()
    }
}

impl Matcher for ProductionParallelMatcher {
    fn add_wme(&mut self, wm: &WorkingMemory, id: WmeId) -> MatchDelta {
        self.run(wm, &[Change::Add(id)])
    }

    fn remove_wme(&mut self, wm: &WorkingMemory, id: WmeId) -> MatchDelta {
        self.run(wm, &[Change::Remove(id)])
    }

    fn process(&mut self, wm: &WorkingMemory, changes: &[Change]) -> MatchDelta {
        self.run(wm, changes)
    }

    fn algorithm_name(&self) -> &'static str {
        "production-parallel"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::{parse_program, parse_wme, WorkingMemory};
    use rete::ReteMatcher;

    const PROGRAM: &str = r#"
        (p pair (a ^x <v>) (b ^x <v>) --> (remove 1))
        (p guarded (goal ^x <v>) - (veto ^x <v>) --> (remove 1))
        (p heavy (a ^x <v>) (a ^x <v>) (a ^x <v>) --> (remove 1))
        (p light (b ^x 0) --> (remove 1))
    "#;

    #[test]
    fn equivalent_to_monolithic_rete() {
        let program = parse_program(PROGRAM).unwrap();
        let mut mono = ReteMatcher::compile(&program).unwrap();
        let mut part = ProductionParallelMatcher::compile(&program, 3).unwrap();
        assert_eq!(part.partition_count(), 3);
        let mut wm = WorkingMemory::new();
        let mut syms = program.symbols.clone();
        let mut ids = Vec::new();
        for lit in [
            "(a ^x 0)",
            "(b ^x 0)",
            "(a ^x 0)",
            "(goal ^x 1)",
            "(veto ^x 1)",
        ] {
            let (id, _) = wm.add(parse_wme(lit, &mut syms).unwrap());
            ids.push(id);
            let mut d1 = mono.add_wme(&wm, id);
            let mut d2 = part.add_wme(&wm, id);
            d1.canonicalize();
            d2.canonicalize();
            assert_eq!(d1, d2);
        }
        for id in ids {
            let mut d1 = mono.remove_wme(&wm, id);
            let mut d2 = part.remove_wme(&wm, id);
            wm.remove(id);
            d1.canonicalize();
            d2.canonicalize();
            assert_eq!(d1, d2);
        }
    }

    #[test]
    fn production_ids_are_preserved() {
        let program = parse_program(PROGRAM).unwrap();
        let mut part = ProductionParallelMatcher::compile(&program, 2).unwrap();
        let mut wm = WorkingMemory::new();
        let mut syms = program.symbols.clone();
        let (id, _) = wm.add(parse_wme("(b ^x 0)", &mut syms).unwrap());
        let d = part.add_wme(&wm, id);
        // `light` is production index 3 overall.
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.added[0].production, ops5::ProductionId(3));
    }

    #[test]
    fn imbalance_is_measurable() {
        let program = parse_program(PROGRAM).unwrap();
        let mut part = ProductionParallelMatcher::compile(&program, 4).unwrap();
        let mut wm = WorkingMemory::new();
        let mut syms = program.symbols.clone();
        // Load `heavy` (three same-class CEs) far more than the others.
        for i in 0..8 {
            let (id, _) = wm.add(parse_wme(&format!("(a ^x {})", i % 2), &mut syms).unwrap());
            part.add_wme(&wm, id);
        }
        assert!(
            part.imbalance() > 1.5,
            "skewed work should show imbalance, got {}",
            part.imbalance()
        );
    }

    #[test]
    fn partition_count_clamped() {
        let program = parse_program("(p only (a ^x 1) --> (halt))").unwrap();
        let part = ProductionParallelMatcher::compile(&program, 16).unwrap();
        assert_eq!(part.partition_count(), 1);
    }
}
