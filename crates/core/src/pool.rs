//! The persistent worker pool behind the parallel engine.
//!
//! The paper's hardware task scheduler keeps every processor eligible
//! the moment activations appear; the previous software analogue
//! respawned `thread::scope` workers for every barrier-separated phase,
//! so on small batches worker 0 drained the injector before its
//! siblings had even been spawned and the steal/idle counters measured
//! spawn latency, not contention. [`WorkerPool`] is the long-lived
//! replacement (the persistent-worker model of classic work-stealing
//! schedulers):
//!
//! * **Park** — between phases every worker sleeps on a condvar; a
//!   parked pool burns no CPU.
//! * **Release** — [`WorkerPool::run`] publishes a phase job and bumps
//!   an epoch; woken workers then wait at a *phase-start arrival
//!   barrier* so no worker can start popping tasks until all of them
//!   are eligible. This is the fix for the worker-0 drain race: on a
//!   small batch every worker now gets a look at the injector.
//! * **Respawn** — a worker that panics mid-phase (an injected
//!   `PanicWorker`/`PoisonLock` fault, or a genuine bug) dies cleanly;
//!   the surviving workers finish the phase, and the pool joins the
//!   dead thread and respawns a replacement with the *same worker
//!   index* at the phase barrier, so per-worker counters stay stable
//!   across pool generations. The panic payloads are handed back to
//!   the caller, which decides whether to contain or propagate them.
//! * **Join** — workers are joined once, on [`Drop`], not per phase.
//!
//! The phase job borrows caller stack state (task queues, counters);
//! its lifetime is erased to hand it to the long-lived workers. That is
//! sound because `run` does not return until every live worker has
//! reported the phase finished and every dead worker has abandoned the
//! job by unwinding — no worker can touch the job pointer after `run`
//! returns, and the pointer is cleared at the phase barrier.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// What a worker thread carried out of a panic.
pub type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// Lifetime-erased phase job (`fn(worker_index)`), shared by pointer.
///
/// Safety: the pointer is only dereferenced between the epoch release
/// and the phase-done barrier, both of which happen inside one
/// [`WorkerPool::run`] call that outlives the borrow.
struct JobPtr(*const (dyn Fn(usize) + Sync));

// The raw pointer crosses into worker threads under the gate mutex;
// the barrier protocol above is what makes that sound.
unsafe impl Send for JobPtr {}

/// Phase-release state, guarded by one mutex.
struct Gate {
    /// Bumped once per phase; workers park until it moves.
    epoch: u64,
    /// The job for the current epoch (`None` between phases).
    job: Option<JobPtr>,
    /// Workers that have observed the current epoch (arrival barrier).
    arrived: usize,
    /// Set once, by `Drop`; parked workers exit.
    shutdown: bool,
}

/// Phase-completion state.
struct Done {
    /// Workers that finished (or died during) the current phase.
    finished: usize,
    /// Workers that panicked this phase, with their payloads.
    dead: Vec<(usize, PanicPayload)>,
}

struct Shared {
    threads: usize,
    gate: Mutex<Gate>,
    /// Workers wait here for the epoch bump *and* for the arrival
    /// barrier; the last arriver broadcasts.
    release: Condvar,
    done: Mutex<Done>,
    /// `run` waits here for `finished == threads`.
    done_cv: Condvar,
}

/// Locks `m`, recovering from poison: pool bookkeeping state is only
/// mutated under short critical sections that cannot unwind mid-update.
fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Lifetime counters for one pool. `spawned` counts every thread ever
/// created (initial crew plus respawns); a healthy run therefore shows
/// `spawned == threads` for the whole matcher lifetime — the old
/// design paid `threads` spawns *per phase*.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads created over the pool's lifetime.
    pub spawned: u64,
    /// Dead workers replaced at a phase barrier.
    pub respawns: u64,
    /// Live worker threads right now (equals the configured thread
    /// count whenever the pool is quiescent).
    pub live: usize,
}

/// A persistent crew of `threads` workers executing one phase job at a
/// time. See the module docs for the park / release / respawn
/// lifecycle.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<Option<JoinHandle<()>>>,
    stats: PoolStats,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.shared.threads)
            .field("stats", &self.stats)
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `threads` parked workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            threads,
            gate: Mutex::new(Gate {
                epoch: 0,
                job: None,
                arrived: 0,
                shutdown: false,
            }),
            release: Condvar::new(),
            done: Mutex::new(Done {
                finished: 0,
                dead: Vec::new(),
            }),
            done_cv: Condvar::new(),
        });
        let mut pool = WorkerPool {
            shared,
            handles: (0..threads).map(|_| None).collect(),
            stats: PoolStats::default(),
        };
        for me in 0..threads {
            pool.spawn_worker(me, 0);
        }
        pool
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.shared.threads
    }

    /// Lifetime spawn / respawn / liveness counters.
    pub fn stats(&self) -> PoolStats {
        let mut s = self.stats;
        s.live = self.handles.iter().flatten().count();
        s
    }

    fn spawn_worker(&mut self, me: usize, epoch: u64) {
        let shared = Arc::clone(&self.shared);
        let handle = std::thread::Builder::new()
            .name(format!("psm-worker-{me}"))
            .spawn(move || worker_loop(&shared, me, epoch))
            .expect("worker thread spawns");
        self.handles[me] = Some(handle);
        self.stats.spawned += 1;
    }

    /// Runs one phase: releases every worker into `job(worker_index)`,
    /// blocks until all of them have finished (or died), respawns any
    /// dead workers, and returns the panic payloads of the dead in
    /// worker order. The phase-start barrier inside guarantees no
    /// worker executes `job` before every worker is eligible to.
    pub fn run(&mut self, job: &(dyn Fn(usize) + Sync)) -> Vec<(usize, PanicPayload)> {
        {
            let mut d = lock(&self.shared.done);
            d.finished = 0;
            d.dead.clear();
        }
        // Erase the borrow's lifetime: workers only use the pointer
        // inside this call (see the protocol note on `JobPtr`), so
        // pretending it is `'static` while it sits in the gate is sound.
        let job: &'static (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(job)
        };
        let job: *const (dyn Fn(usize) + Sync) = job;
        let epoch = {
            let mut g = lock(&self.shared.gate);
            g.arrived = 0;
            g.job = Some(JobPtr(job));
            g.epoch += 1;
            self.shared.release.notify_all();
            g.epoch
        };
        let mut dead = {
            let mut d = lock(&self.shared.done);
            while d.finished < self.shared.threads {
                d = self
                    .shared
                    .done_cv
                    .wait(d)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            std::mem::take(&mut d.dead)
        };
        // Reclaim the job pointer before the caller's borrow ends.
        lock(&self.shared.gate).job = None;
        // Phase barrier: bury and replace the dead so the next release
        // starts with a full crew under the same worker indices.
        dead.sort_by_key(|(me, _)| *me);
        for (me, _) in &dead {
            if let Some(h) = self.handles[*me].take() {
                let _ = h.join();
            }
            self.spawn_worker(*me, epoch);
            self.stats.respawns += 1;
        }
        dead
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut g = lock(&self.shared.gate);
            g.shutdown = true;
            self.shared.release.notify_all();
        }
        for h in &mut self.handles {
            if let Some(h) = h.take() {
                let _ = h.join();
            }
        }
    }
}

/// The worker thread body: park → arrive → execute → report, forever.
fn worker_loop(shared: &Shared, me: usize, mut seen_epoch: u64) {
    loop {
        let job = {
            let mut g = lock(&shared.gate);
            loop {
                if g.shutdown {
                    return;
                }
                if g.epoch != seen_epoch {
                    break;
                }
                g = shared
                    .release
                    .wait(g)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            seen_epoch = g.epoch;
            // Phase-start arrival barrier: block until the whole crew
            // has observed this epoch, so no worker can pop a task
            // while a sibling is still parked (the worker-0 drain
            // race). The crew is always full here because dead workers
            // are respawned at the previous phase's barrier.
            g.arrived += 1;
            if g.arrived == shared.threads {
                shared.release.notify_all();
            } else {
                while g.arrived < shared.threads {
                    g = shared
                        .release
                        .wait(g)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            }
            JobPtr(g.job.as_ref().expect("released epoch carries a job").0)
        };
        // Safety: the pointer was published for this epoch and `run`
        // cannot return (and thus the borrow cannot end) before this
        // worker reports into `done` below.
        let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)(me) }));
        let died = outcome.is_err();
        {
            let mut d = lock(&shared.done);
            if let Err(payload) = outcome {
                d.dead.push((me, payload));
            }
            d.finished += 1;
            shared.done_cv.notify_one();
        }
        if died {
            // The thread exits; the pool joins it and respawns a
            // replacement under the same index at the phase barrier.
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn all_workers_run_each_phase_and_spawns_stay_flat() {
        let mut pool = WorkerPool::new(4);
        let hits = AtomicU64::new(0);
        for _ in 0..10 {
            let dead = pool.run(&|me| {
                hits.fetch_add(1 << (16 * me as u64), Ordering::Relaxed);
            });
            assert!(dead.is_empty());
        }
        let h = hits.load(Ordering::Relaxed);
        for me in 0..4 {
            assert_eq!((h >> (16 * me)) & 0xFFFF, 10, "worker {me} ran every phase");
        }
        let s = pool.stats();
        assert_eq!(s.spawned, 4, "one spawn per worker per pool lifetime");
        assert_eq!(s.respawns, 0);
        assert_eq!(s.live, 4);
    }

    #[test]
    fn no_worker_starts_before_all_are_released() {
        // If any worker could run the job before its siblings were
        // eligible, it could observe `arrived < threads` here.
        let mut pool = WorkerPool::new(3);
        let seen_short = AtomicUsize::new(0);
        let shared = Arc::clone(&pool.shared);
        for _ in 0..50 {
            pool.run(&|_| {
                if lock(&shared.gate).arrived < 3 {
                    seen_short.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        assert_eq!(seen_short.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn dead_workers_are_respawned_with_stable_indices() {
        let mut pool = WorkerPool::new(2);
        let phase = AtomicU64::new(0);
        let ran: Vec<AtomicU64> = (0..2).map(|_| AtomicU64::new(0)).collect();
        for p in 0..6u64 {
            phase.store(p, Ordering::Relaxed);
            let dead = pool.run(&|me| {
                ran[me].fetch_add(1, Ordering::Relaxed);
                if phase.load(Ordering::Relaxed) == 2 && me == 1 {
                    panic!("die once");
                }
            });
            if p == 2 {
                assert_eq!(dead.len(), 1);
                assert_eq!(dead[0].0, 1, "worker 1 died");
            } else {
                assert!(dead.is_empty(), "phase {p} clean");
            }
        }
        for (me, r) in ran.iter().enumerate() {
            assert_eq!(r.load(Ordering::Relaxed), 6, "worker {me} ran all phases");
        }
        let s = pool.stats();
        assert_eq!(s.respawns, 1);
        assert_eq!(s.spawned, 3, "2 initial + 1 respawn");
        assert_eq!(s.live, 2, "no thread leak");
    }

    #[test]
    fn drop_joins_quietly() {
        let pool = WorkerPool::new(8);
        drop(pool); // must not hang or panic
    }
}
