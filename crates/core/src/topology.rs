//! Flattened network topology for the parallel engine.
//!
//! The sequential runtime routes tokens through explicit beta-memory
//! nodes. The parallel engine gives every two-input node *private*
//! left/right memories (so one lock covers an activation's whole
//! insert-and-scan critical section), which makes shared beta memories
//! redundant: this module flattens them out of the token routing graph.

use ops5::ProductionId;
use rete::{Network, NodeId};

/// Token routing for the parallel engine: for each two-input node, the
/// downstream nodes that receive its output tokens directly.
#[derive(Debug, Clone)]
pub struct ParallelTopology {
    /// Per beta node: the two-input and terminal nodes fed by its output
    /// tokens (beta memories flattened away). Indexed by [`NodeId`].
    pub token_children: Vec<Vec<NodeId>>,
    /// Whether each node participates in parallel execution (two-input
    /// nodes and terminals; memories are `false`).
    pub active: Vec<bool>,
    /// Terminal node → production, for quick emission.
    pub terminal_production: Vec<Option<ProductionId>>,
}

impl ParallelTopology {
    /// Number of nodes that participate in parallel execution (the
    /// two-input and terminal nodes) — the upper bound on per-node
    /// lock contention and the node-level parallelism the §4 analysis
    /// counts.
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Derives the flattened topology from a compiled network.
    pub fn from_network(network: &Network) -> Self {
        let n = network.nodes.len();
        let mut token_children = vec![Vec::new(); n];
        let mut active = vec![false; n];
        let mut terminal_production = vec![None; n];

        for (idx, spec) in network.nodes.iter().enumerate() {
            match spec.kind {
                rete::network::NodeKind::Join | rete::network::NodeKind::Negative => {
                    active[idx] = true;
                    let mut out = Vec::new();
                    for &child in &spec.children {
                        match network.node(child).kind {
                            rete::network::NodeKind::BetaMemory => {
                                // Skip the memory, route to its children.
                                out.extend(network.node(child).children.iter().copied());
                            }
                            _ => out.push(child),
                        }
                    }
                    token_children[idx] = out;
                }
                rete::network::NodeKind::Terminal => {
                    active[idx] = true;
                    terminal_production[idx] = spec.production;
                }
                rete::network::NodeKind::BetaMemory => {}
            }
        }
        ParallelTopology {
            token_children,
            active,
            terminal_production,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::parse_program;
    use rete::network::NodeKind;

    #[test]
    fn beta_memories_are_flattened_out() {
        let program =
            parse_program("(p r (a ^x <v>) (b ^x <v>) (c ^x <v>) --> (remove 1))").unwrap();
        let net = Network::compile(&program).unwrap();
        let topo = ParallelTopology::from_network(&net);
        for (idx, spec) in net.nodes.iter().enumerate() {
            for &child in &topo.token_children[idx] {
                assert_ne!(
                    net.node(child).kind,
                    NodeKind::BetaMemory,
                    "memories must not appear in token routing"
                );
            }
            if spec.kind == NodeKind::BetaMemory {
                assert!(!topo.active[idx]);
                assert!(topo.token_children[idx].is_empty());
            }
        }
        // The first join routes (through the flattened memory) to the
        // second join.
        let joins: Vec<usize> = net
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kind == NodeKind::Join)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(joins.len(), 3);
        assert!(topo.token_children[joins[0]]
            .iter()
            .any(|c| c.index() == joins[1]));
    }

    #[test]
    fn active_count_excludes_memories() {
        let program =
            parse_program("(p r (a ^x <v>) (b ^x <v>) (c ^x <v>) --> (remove 1))").unwrap();
        let net = Network::compile(&program).unwrap();
        let topo = ParallelTopology::from_network(&net);
        let memories = net
            .nodes
            .iter()
            .filter(|s| s.kind == NodeKind::BetaMemory)
            .count();
        assert_eq!(topo.active_count(), net.nodes.len() - memories);
        assert_eq!(topo.active_count(), 4, "3 joins + 1 terminal");
    }

    #[test]
    fn terminals_are_mapped() {
        let program = parse_program("(p only (a ^x 1) --> (halt))").unwrap();
        let net = Network::compile(&program).unwrap();
        let topo = ParallelTopology::from_network(&net);
        let term = net
            .nodes
            .iter()
            .position(|s| s.kind == NodeKind::Terminal)
            .unwrap();
        assert_eq!(topo.terminal_production[term], Some(ops5::ProductionId(0)));
        assert!(topo.active[term]);
    }

    #[test]
    fn shared_memory_fanout_expands() {
        // Two productions share the first join; its output memory feeds
        // two downstream joins, so the flattened join has two token
        // children (plus none via terminal).
        let program = parse_program(
            r#"
            (p a (g ^t x) (h ^u <v>) (i ^w <v>) --> (remove 1))
            (p b (g ^t x) (h ^u <v>) (j ^w <v>) --> (remove 1))
            "#,
        )
        .unwrap();
        let net = Network::compile(&program).unwrap();
        let topo = ParallelTopology::from_network(&net);
        let max_fanout = topo.token_children.iter().map(Vec::len).max().unwrap_or(0);
        assert!(max_fanout >= 2, "shared prefix fans out to both branches");
    }
}
