//! The node-activation-parallel Rete engine.
//!
//! See the crate docs for the consistency protocol. The engine executes
//! each change batch in two barrier-separated phases (retractions, then
//! assertions); within a phase, activations bound for the same node are
//! grouped into one task (batched change propagation: dispatch, flight
//! tracing, and the per-node lock are paid once per node per phase
//! fragment, not once per WME change), and each two-input node keeps
//! hashed value-bucket indexes over its memories so an activation
//! probes the bucket its equality key selects instead of scanning the
//! whole opposite memory — the same `(position, attribute)` keying as
//! the sequential matcher's `MemoryStrategy::Hashed` default. Tasks are
//! dealt round-robin into per-worker deques and drained by a persistent
//! [`WorkerPool`](crate::pool::WorkerPool) — the software analogue of
//! the paper's hardware task scheduler. Workers park between phases and
//! are released together through a phase-start barrier (no worker can
//! pop before all are eligible), pop their own deque LIFO (locality),
//! and steal FIFO from peers when it runs dry. Threads are spawned once
//! per matcher lifetime, not per phase, and joined on drop.
//!
//! Every worker keeps [`WorkerStats`] counters (tasks, steals, idle
//! spins, queue depth, lock wait) that are merged after each phase and
//! optionally published to an attached [`psm_obs::Obs`] registry;
//! timing counters (`lock_wait_ns`, `exec_ns`) are only collected once
//! [`ParallelReteMatcher::enable_timing`] or the obs detail toggle
//! turns them on, keeping the default hot path free of clock reads.

use std::collections::VecDeque;
use std::panic::resume_unwind;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use psm_obs::{FlightKind, NodeDelta, Obs, ProfileKind};

use ops5::{
    Change, Error, FxHashMap, Instantiation, MatchDelta, Matcher, PredOp, Program, Value, Wme,
    WmeId, WorkingMemory,
};
use rete::network::NodeKind;
use rete::{CompileOptions, JoinTest, Network, NodeId, Token};

use crate::pool::{PoolStats, WorkerPool};
use crate::topology::ParallelTopology;

/// Configuration for the parallel engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelOptions {
    /// Worker threads (the paper's processor count). Clamped to ≥ 1.
    pub threads: usize,
    /// Compile the network with node sharing (default true).
    pub share: bool,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions {
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            share: true,
        }
    }
}

/// Work counters aggregated across workers and batches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParallelStats {
    /// Change batches processed.
    pub batches: u64,
    /// Working-memory changes processed.
    pub changes: u64,
    /// Grouped node-activation tasks executed (one task carries every
    /// payload bound for its node in that phase fragment).
    pub tasks: u64,
    /// Join-test evaluations.
    pub join_tests: u64,
    /// Opposite-memory entries scanned.
    pub pairs_scanned: u64,
    /// Constant (alpha) tests evaluated during ingest.
    pub constant_tests: u64,
}

/// Per-worker scheduler counters, accumulated across phases.
///
/// Counter fields are always collected (plain integer adds on
/// thread-local scratch); the `*_ns` timing fields stay zero unless
/// timing is enabled via [`ParallelReteMatcher::enable_timing`] or an
/// attached [`Obs`] handle with the detail toggle on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Node-activation tasks this worker executed.
    pub tasks: u64,
    /// Tasks taken from another worker's deque.
    pub steals: u64,
    /// Peer deques probed for work (successful or not). Together with
    /// `tasks` this witnesses participation: a released worker always
    /// executes a task or probes every peer before it can go idle.
    pub steal_attempts: u64,
    /// Empty polls (no task anywhere; the worker yielded).
    pub idle_spins: u64,
    /// High-water mark of this worker's local deque.
    pub max_queue_depth: u64,
    /// Nanoseconds spent waiting on node locks (timing mode only).
    pub lock_wait_ns: u64,
    /// Nanoseconds spent executing tasks (timing mode only).
    pub exec_ns: u64,
}

impl WorkerStats {
    /// Folds `other` into `self` (counters add, high-water maxes).
    pub fn merge(&mut self, other: &WorkerStats) {
        self.tasks += other.tasks;
        self.steals += other.steals;
        self.steal_attempts += other.steal_attempts;
        self.idle_spins += other.idle_spins;
        self.max_queue_depth = self.max_queue_depth.max(other.max_queue_depth);
        self.lock_wait_ns += other.lock_wait_ns;
        self.exec_ns += other.exec_ns;
    }
}

/// What a [`FaultInjector`] tells a worker to do with the task it is
/// about to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultAction {
    /// Execute normally.
    #[default]
    None,
    /// Silently discard the task (its subtree of activations is lost —
    /// the state corruption a lost message on the paper's shared bus
    /// would cause).
    DropTask,
    /// Panic before touching any node state (a worker dying cleanly).
    PanicWorker,
    /// Acquire the node lock, then panic while holding it (poisons the
    /// mutex; exercises the poison-recovering lock path).
    PoisonLock,
}

/// Deterministic fault-injection hook for the work-stealing loop.
///
/// Consulted once per task, keyed by the engine's monotonically
/// increasing phase sequence number and a per-phase global task sequence
/// number. Because the *set* of tasks a phase executes is
/// schedule-independent (the consistency protocol makes task outcomes
/// commutative), a plan keyed on `(phase, seq)` fires deterministically
/// across runs even though *which worker* draws the poisoned task races.
///
/// Implemented by `psm_fault::FaultPlan`; the engine only knows the
/// trait so the dependency points outward.
pub trait FaultInjector: Send + Sync {
    /// Decides the fate of task number `seq` of phase `phase`, about to
    /// run on worker `worker`.
    fn on_task(&self, phase: u64, seq: u64, worker: usize) -> FaultAction;
}

/// Locks `m`, recovering (rather than panicking) if a previous holder
/// panicked: the protected node state is only mutated *after* all
/// injected panic points, so a poisoned guard still protects a
/// consistent value. Every recovery is counted so supervisors can see
/// how often the pool survived a poisoned lock.
fn relock<'a, T>(m: &'a Mutex<T>, recovered: &AtomicU64) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|poisoned| {
        recovered.fetch_add(1, Ordering::Relaxed);
        poisoned.into_inner()
    })
}

/// Sign of a propagating change (local copy to keep the engine
/// self-contained; mirrors `rete::token::Sign`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sign {
    Plus,
    Minus,
}

impl Sign {
    fn delta(self) -> i32 {
        match self {
            Sign::Plus => 1,
            Sign::Minus => -1,
        }
    }
    fn invert(self) -> Sign {
        match self {
            Sign::Plus => Sign::Minus,
            Sign::Minus => Sign::Plus,
        }
    }
}

/// A pending node activation: the whole batch of payloads bound for one
/// node in this phase fragment, executed under a single lock
/// acquisition. Grouping amortizes dispatch, flight tracing, and the
/// per-node mutex across the batch instead of paying them per WME
/// change (DESIGN.md §17).
#[derive(Debug)]
struct Task {
    node: NodeId,
    items: Vec<(Payload, Sign)>,
}

#[derive(Debug)]
enum Payload {
    Right(WmeId),
    Left(Token),
}

/// Order-preserving grouping of activations by destination node: the
/// builder behind batched change propagation. Payloads for the same
/// node coalesce into one [`Task`] in first-seen node order, so a
/// phase's task count scales with the touched-node set, not the change
/// count.
#[derive(Default)]
struct TaskGroups {
    order: Vec<NodeId>,
    items: FxHashMap<NodeId, Vec<(Payload, Sign)>>,
}

impl TaskGroups {
    fn push(&mut self, node: NodeId, payload: Payload, sign: Sign) {
        let bucket = self.items.entry(node).or_default();
        if bucket.is_empty() {
            self.order.push(node);
        }
        bucket.push((payload, sign));
    }

    fn into_tasks(mut self) -> Vec<Task> {
        self.order
            .into_iter()
            .map(|node| Task {
                node,
                items: self.items.remove(&node).expect("ordered node has items"),
            })
            .collect()
    }
}

/// Entry of a negative node's left store.
#[derive(Debug, Clone, Copy, Default)]
struct NegEntry {
    /// Signed presence of the token (−1 debt, 0 absent, 1 present).
    presence: i32,
    /// Net count of matching right-memory WMEs.
    count: i32,
}

/// Lock-protected state of one node.
///
/// The `*_idx` maps are the engine-side hashed join memories: value
/// buckets over the *present* entries of `left`/`right`, keyed by the
/// node's first equality test (see
/// [`ParallelReteMatcher::index_tests`]). They are maintained exactly
/// on presence transitions — debt entries (negative counts) are never
/// indexed, and a bucket that drains to empty is pruned — so an
/// activation probes one bucket instead of scanning the whole opposite
/// memory. Both maps stay empty on nodes without an equality test,
/// which fall back to the linear scan.
#[derive(Debug)]
enum NodeSlot {
    Join {
        /// Signed token presence (debt-tolerant multiset).
        left: FxHashMap<Token, i32>,
        left_idx: FxHashMap<Value, Vec<Token>>,
        /// Signed WME presence.
        right: FxHashMap<WmeId, i32>,
        right_idx: FxHashMap<Value, Vec<WmeId>>,
    },
    Negative {
        left: FxHashMap<Token, NegEntry>,
        left_idx: FxHashMap<Value, Vec<Token>>,
        right: FxHashMap<WmeId, i32>,
        right_idx: FxHashMap<Value, Vec<WmeId>>,
    },
    Terminal,
    Inactive,
}

/// Appends `item` to the value bucket for `key` (no-op for unkeyable
/// entries — an absent attribute can never satisfy the equality test,
/// so such entries are invisible to indexed probes by construction).
fn idx_insert<K>(idx: &mut FxHashMap<Value, Vec<K>>, key: Option<Value>, item: K) {
    if let Some(k) = key {
        idx.entry(k).or_default().push(item);
    }
}

/// Removes `item` from the value bucket for `key`, pruning the bucket
/// when it drains to empty so churn workloads cannot grow the index
/// without bound.
fn idx_remove<K: PartialEq>(idx: &mut FxHashMap<Value, Vec<K>>, key: Option<Value>, item: &K) {
    if let Some(k) = key {
        if let Some(bucket) = idx.get_mut(&k) {
            if let Some(at) = bucket.iter().position(|x| x == item) {
                bucket.swap_remove(at);
            }
            if bucket.is_empty() {
                idx.remove(&k);
            }
        }
    }
}

/// Per-worker scratch, merged after each phase.
#[derive(Default)]
struct WorkerLocal {
    delta: MatchDelta,
    tasks: u64,
    join_tests: u64,
    pairs_scanned: u64,
    worker: WorkerStats,
    /// Per-node profiler deltas, accumulated locally during the phase
    /// and flushed into `Obs::profile` once at the merge barrier — the
    /// same cold-path discipline as the per-worker counters. Empty
    /// unless the attached `Obs` has profile capacity.
    prof: FxHashMap<u32, (ProfileKind, NodeDelta)>,
}

/// The parallel Rete matcher (node-activation granularity).
///
/// # Examples
///
/// ```
/// use ops5::{parse_program, parse_wme, Interpreter};
/// use psm_core::{ParallelOptions, ParallelReteMatcher};
///
/// # fn main() -> Result<(), ops5::Error> {
/// let program = parse_program("(p r (a ^x <v>) (b ^x <v>) --> (remove 1))")?;
/// let matcher = ParallelReteMatcher::compile(
///     &program,
///     ParallelOptions { threads: 2, share: true },
/// )?;
/// let mut interp = Interpreter::new(program, matcher);
/// let mut syms = interp.program().symbols.clone();
/// interp.insert(parse_wme("(a ^x 1)", &mut syms)?);
/// interp.insert(parse_wme("(b ^x 1)", &mut syms)?);
/// assert_eq!(interp.run(10)?, 1);
/// # Ok(())
/// # }
/// ```
pub struct ParallelReteMatcher {
    network: Arc<Network>,
    topo: ParallelTopology,
    states: Vec<Mutex<NodeSlot>>,
    /// Per-node index key: the first equality test of each two-input
    /// node, chosen once at build time. A right WME is bucketed by
    /// `own_attr`'s value, a left token by the value at
    /// `(token_pos, token_attr)` — the same `(position, attribute)`
    /// keying as the sequential matcher's hashed memories, so both
    /// runtimes probe identical candidate sets. `None` (no equality
    /// test) keeps the node on the linear scan path.
    index_tests: Vec<Option<JoinTest>>,
    /// The engine's own WME store: tokens and right memories reference
    /// WMEs by id; workers read this immutably during a phase.
    store: Vec<Option<Wme>>,
    threads: usize,
    /// The persistent worker crew. Spawned lazily on the first
    /// non-empty phase (a matcher that never runs costs no threads),
    /// then reused for every subsequent phase and joined on drop.
    /// `None` only before first use — `run_phase` takes it out while a
    /// phase borrows `self` and always puts it back.
    pool: Option<WorkerPool>,
    /// Pool lifetime counters, mirrored here so they survive pool
    /// hand-offs and stay readable without a pool (pre-first-phase).
    pool_stats: PoolStats,
    stats: ParallelStats,
    /// Per-worker counters accumulated across all phases.
    worker_totals: Vec<WorkerStats>,
    /// Collect lock-wait / exec timing (off by default; clock reads on
    /// the hot path are not free).
    timing: bool,
    /// Optional metrics sink; counters are published per phase (cold
    /// path), never per task.
    obs: Option<Arc<Obs>>,
    /// Optional fault-injection hook consulted once per task.
    fault: Option<Arc<dyn FaultInjector>>,
    /// Monotonic phase counter (two phases per processed batch), the
    /// coarse coordinate of the fault-injection plane.
    phase_seq: u64,
    /// Faults injected since the last [`ParallelReteMatcher::take_faults`].
    /// Non-zero means node state may be corrupt (dropped subtrees).
    injected_faults: AtomicU64,
    /// Poisoned-lock recoveries performed by [`relock`].
    poison_recovered: AtomicU64,
    /// Debug write-set sanitizer; see
    /// [`ParallelReteMatcher::attach_sanitizer`].
    sanitizer: Option<Arc<ops5::effects::WriteSanitizer>>,
}

impl std::fmt::Debug for ParallelReteMatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelReteMatcher")
            .field("threads", &self.threads)
            .field("nodes", &self.states.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl ParallelReteMatcher {
    /// Compiles `program` into a parallel matcher.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Semantic`] for LHS constructs the Rete compiler
    /// rejects.
    pub fn compile(program: &Program, options: ParallelOptions) -> Result<Self, Error> {
        let network = Arc::new(Network::compile_with(
            program,
            CompileOptions {
                share: options.share,
            },
        )?);
        Ok(Self::from_network(network, options.threads))
    }

    /// Builds the matcher over an already-compiled network.
    pub fn from_network(network: Arc<Network>, threads: usize) -> Self {
        let topo = ParallelTopology::from_network(&network);
        let mut slots: Vec<NodeSlot> = network
            .nodes
            .iter()
            .map(|spec| match spec.kind {
                NodeKind::Join => {
                    let mut left = FxHashMap::default();
                    if spec.left.is_none() {
                        // The dummy top token is always present. It is
                        // never indexed: a node fed the top token has no
                        // earlier positive CEs and therefore no equality
                        // test to key on.
                        left.insert(Token::top(), 1);
                    }
                    NodeSlot::Join {
                        left,
                        left_idx: FxHashMap::default(),
                        right: FxHashMap::default(),
                        right_idx: FxHashMap::default(),
                    }
                }
                NodeKind::Negative => {
                    let mut left = FxHashMap::default();
                    if spec.left.is_none() {
                        left.insert(
                            Token::top(),
                            NegEntry {
                                presence: 1,
                                count: 0,
                            },
                        );
                    }
                    NodeSlot::Negative {
                        left,
                        left_idx: FxHashMap::default(),
                        right: FxHashMap::default(),
                        right_idx: FxHashMap::default(),
                    }
                }
                NodeKind::Terminal => NodeSlot::Terminal,
                NodeKind::BetaMemory => NodeSlot::Inactive,
            })
            .collect();

        // A leading negative node passes the top token at start-up (its
        // right memory is empty); since every node's left store is
        // private, propagate the top token through chains of leading
        // negatives into their children.
        let mut stack: Vec<NodeId> = network
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.kind == NodeKind::Negative && s.left.is_none())
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        while let Some(node) = stack.pop() {
            for &child in &topo.token_children[node.index()] {
                match &mut slots[child.index()] {
                    NodeSlot::Join { left, .. } => {
                        left.insert(Token::top(), 1);
                    }
                    NodeSlot::Negative { left, .. } => {
                        left.insert(
                            Token::top(),
                            NegEntry {
                                presence: 1,
                                count: 0,
                            },
                        );
                        stack.push(child);
                    }
                    NodeSlot::Terminal | NodeSlot::Inactive => {
                        debug_assert!(false, "terminal cannot follow only negated CEs");
                    }
                }
            }
        }

        let states = slots.into_iter().map(Mutex::new).collect();
        let index_tests = network
            .nodes
            .iter()
            .map(|spec| match spec.kind {
                NodeKind::Join | NodeKind::Negative => {
                    spec.tests.iter().copied().find(|t| t.op == PredOp::Eq)
                }
                NodeKind::Terminal | NodeKind::BetaMemory => None,
            })
            .collect();
        let threads = threads.max(1);
        ParallelReteMatcher {
            topo,
            states,
            index_tests,
            store: Vec::new(),
            threads,
            pool: None,
            pool_stats: PoolStats::default(),
            stats: ParallelStats::default(),
            worker_totals: vec![WorkerStats::default(); threads],
            timing: false,
            obs: None,
            fault: None,
            phase_seq: 0,
            injected_faults: AtomicU64::new(0),
            poison_recovered: AtomicU64::new(0),
            network,
            sanitizer: None,
        }
    }

    /// Attaches (or clears) a fault-injection hook. With a hook
    /// attached, worker panics are contained: the phase completes on the
    /// surviving workers, the panic is counted, and the caller observes
    /// it through [`ParallelReteMatcher::take_faults`] instead of an
    /// unwind. Without a hook, unexpected panics propagate as before.
    pub fn set_fault_injector(&mut self, injector: Option<Arc<dyn FaultInjector>>) {
        self.fault = injector;
    }

    /// Returns the number of faults injected (tasks dropped, workers
    /// panicked, locks poisoned) since the last call, resetting the
    /// count. Non-zero means this matcher's state can no longer be
    /// trusted and must be rebuilt or recovered from a checkpoint.
    pub fn take_faults(&mut self) -> u64 {
        self.injected_faults.swap(0, Ordering::Relaxed)
    }

    /// Total poisoned-lock recoveries performed so far (cumulative).
    pub fn poison_recoveries(&self) -> u64 {
        self.poison_recovered.load(Ordering::Relaxed)
    }

    /// The compiled network.
    pub fn network(&self) -> &Arc<Network> {
        &self.network
    }

    /// Work counters so far.
    pub fn stats(&self) -> ParallelStats {
        self.stats
    }

    /// Worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Worker-pool lifetime counters: threads spawned (== `threads` on
    /// a healthy run, however many phases executed), dead workers
    /// respawned after injected or genuine panics, and live threads.
    /// All zeros before the first non-empty phase (the pool is lazy).
    pub fn pool_stats(&self) -> PoolStats {
        match &self.pool {
            Some(pool) => pool.stats(),
            None => self.pool_stats,
        }
    }

    /// Per-worker scheduler counters accumulated so far (one entry per
    /// worker thread).
    pub fn worker_stats(&self) -> &[WorkerStats] {
        &self.worker_totals
    }

    /// All worker counters folded into one.
    pub fn worker_totals_merged(&self) -> WorkerStats {
        let mut total = WorkerStats::default();
        for w in &self.worker_totals {
            total.merge(w);
        }
        total
    }

    /// Enables lock-wait and task-execution timing (adds two clock
    /// reads per task; off by default).
    pub fn enable_timing(&mut self) {
        self.timing = true;
    }

    /// Attaches an observability handle. Worker counters are published
    /// into its registry after every phase (`engine.*` metrics), a
    /// per-phase event is emitted when the ring is enabled, and the
    /// handle's detail toggle drives timing collection.
    pub fn attach_obs(&mut self, obs: Arc<Obs>) {
        self.obs = Some(obs);
    }

    /// Attaches a debug [`ops5::effects::WriteSanitizer`]: every change
    /// batch handed to [`Matcher::process`] during a firing is checked
    /// against the firing production's static write set before the
    /// parallel phases run. Share the same `Arc` with the interpreter's
    /// `attach_sanitizer` — it owns the firing context; batches seen
    /// outside a firing are not checked.
    pub fn attach_sanitizer(&mut self, sanitizer: Arc<ops5::effects::WriteSanitizer>) {
        self.sanitizer = Some(sanitizer);
    }

    /// Tokens resident across all node left stores, excluding the
    /// permanent dummy-top seeds. Zero once the working memory has been
    /// emptied — the state-purge invariant shared with the sequential
    /// matcher.
    pub fn resident_tokens(&self) -> usize {
        self.states
            .iter()
            .map(|slot| match &*relock(slot, &self.poison_recovered) {
                NodeSlot::Join { left, .. } => {
                    left.iter().filter(|(t, &p)| p > 0 && !t.is_empty()).count()
                }
                NodeSlot::Negative { left, .. } => left
                    .iter()
                    .filter(|(t, e)| e.presence > 0 && !t.is_empty())
                    .count(),
                NodeSlot::Terminal | NodeSlot::Inactive => 0,
            })
            .sum()
    }

    /// Copies the WME into the engine's store (idempotent).
    fn ingest(&mut self, wm: &WorkingMemory, id: WmeId) {
        if self.store.len() <= id.index() {
            self.store.resize(id.index() + 1, None);
        }
        if self.store[id.index()].is_none() {
            self.store[id.index()] = Some(
                wm.get(id)
                    .expect("matcher contract: changed WME resolvable")
                    .clone(),
            );
        }
    }

    /// Seeds the right activations for one change into the phase's
    /// per-node task groups.
    fn seed_tasks(&mut self, id: WmeId, sign: Sign, out: &mut TaskGroups) {
        let wme = self.store[id.index()]
            .as_ref()
            .expect("ingested WME present");
        let (alphas, tests) = self.network.alpha.matching(wme);
        self.stats.constant_tests += tests;
        for alpha in alphas {
            for &succ in &self.network.alpha_successors[alpha.index()] {
                out.push(succ, Payload::Right(id), sign);
            }
        }
    }

    /// Runs one phase: drain `tasks` (and their descendants) across the
    /// persistent worker pool, returning the merged signed delta.
    ///
    /// Scheduling: seed tasks are dealt round-robin into the per-worker
    /// deques (no shared injector — stealing itself is the load
    /// balancer); spawned
    /// children go to the spawning worker's own deque, popped LIFO for
    /// locality. A worker whose deque runs dry steals FIFO from a peer
    /// (oldest task first — the classic work-stealing discipline,
    /// built on `std::sync` so the workspace has no external
    /// dependencies). The pool's phase-start barrier guarantees every
    /// worker is released before any of them pops, and the drain loop
    /// attempts a pop (own deque, then every peer)
    /// *before* consulting the termination flag — so on any non-empty
    /// phase each worker either executes a task or records a probe of
    /// every peer deque, never silently exits without looking. This is
    /// the fix for the worker-0 small-batch drain race the old
    /// spawn-per-phase design had.
    fn run_phase(&mut self, label: &'static str, tasks: Vec<Task>) -> MatchDelta {
        self.phase_seq += 1;
        if tasks.is_empty() {
            return MatchDelta::new();
        }
        let phase_seq = self.phase_seq;
        let threads = self.threads;
        let timing = self.timing;
        let pending = AtomicUsize::new(tasks.len());
        let task_seq = AtomicU64::new(0);
        let deques: Vec<Mutex<VecDeque<Task>>> = {
            let mut qs: Vec<VecDeque<Task>> = (0..threads).map(|_| VecDeque::new()).collect();
            for (i, t) in tasks.into_iter().enumerate() {
                qs[i % threads].push_back(t);
            }
            qs.into_iter().map(Mutex::new).collect()
        };
        let merged: Mutex<Vec<(usize, WorkerLocal)>> = Mutex::new(Vec::new());
        // Take the pool out so the phase job below can borrow `self`
        // shared; spawned lazily on the first non-empty phase.
        let mut pool = self.pool.take().unwrap_or_else(|| WorkerPool::new(threads));
        // Per-node latency rides the existing per-task timing clock
        // reads, so it costs nothing extra beyond the histogram add;
        // like the span layer it waits for the detail toggle.
        let prof_latency = timing
            && self
                .obs
                .as_ref()
                .is_some_and(|o| o.profile.enabled() && o.detail());
        let this: &ParallelReteMatcher = self;
        let job = |me: usize| {
            let mut local = WorkerLocal::default();
            loop {
                let recovered = &this.poison_recovered;
                let mut next = relock(&deques[me], recovered).pop_back();
                if next.is_none() {
                    for k in 1..threads {
                        let victim = (me + k) % threads;
                        local.worker.steal_attempts += 1;
                        if let Some(t) = relock(&deques[victim], recovered).pop_front() {
                            local.worker.steals += 1;
                            next = Some(t);
                            break;
                        }
                    }
                }
                match next {
                    Some(task) => {
                        // Decrement on drop so a panicking task
                        // cannot leave siblings spinning forever.
                        let _guard = PendingGuard(&pending);
                        let action = match &this.fault {
                            Some(f) => {
                                let seq = task_seq.fetch_add(1, Ordering::Relaxed);
                                f.on_task(phase_seq, seq, me)
                            }
                            None => FaultAction::None,
                        };
                        match action {
                            FaultAction::DropTask => {
                                this.injected_faults.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                            FaultAction::PanicWorker => {
                                this.injected_faults.fetch_add(1, Ordering::Relaxed);
                                panic!("injected fault: worker panic");
                            }
                            FaultAction::None | FaultAction::PoisonLock => {}
                        }
                        let started = timing.then(Instant::now);
                        let node = task.node.index() as u32;
                        let children =
                            this.exec(task, &mut local, action == FaultAction::PoisonLock);
                        if let Some(t0) = started {
                            let ns = t0.elapsed().as_nanos() as u64;
                            local.worker.exec_ns += ns;
                            if prof_latency {
                                if let Some(obs) = &this.obs {
                                    obs.profile.record_latency(node, ns);
                                }
                            }
                        }
                        if !children.is_empty() {
                            pending.fetch_add(children.len(), Ordering::AcqRel);
                            let mut q = relock(&deques[me], recovered);
                            for c in children {
                                q.push_back(c);
                            }
                            local.worker.max_queue_depth =
                                local.worker.max_queue_depth.max(q.len() as u64);
                        }
                    }
                    None => {
                        // Pops (including a probe of every peer) came up
                        // empty; only now consult the termination flag.
                        // `pending` counts queued plus in-flight tasks,
                        // so zero here means the phase is fully drained.
                        if pending.load(Ordering::Acquire) == 0 {
                            break;
                        }
                        local.worker.idle_spins += 1;
                        std::thread::yield_now();
                    }
                }
            }
            relock(&merged, &this.poison_recovered).push((me, local));
        };
        // A worker panic (injected, or a genuine bug) kills that worker
        // only; its siblings drain the remaining tasks (the
        // `PendingGuard` keeps the pending count honest) and the pool
        // respawns the dead at the phase barrier, handing back the
        // panic payloads. With a fault injector attached the panic is
        // contained here and surfaced through `take_faults`; without
        // one it propagates unchanged.
        let dead = pool.run(&job);
        self.pool_stats = pool.stats();
        self.pool = Some(pool);
        if let Some((_, payload)) = dead.into_iter().next() {
            if self.fault.is_none() {
                resume_unwind(payload);
            }
        }
        let mut delta = MatchDelta::new();
        let mut phase_total = WorkerStats::default();
        let merged = merged
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let obs = self.obs.clone();
        for (me, local) in merged {
            delta.merge(local.delta);
            self.stats.tasks += local.tasks;
            self.stats.join_tests += local.join_tests;
            self.stats.pairs_scanned += local.pairs_scanned;
            if let Some(obs) = &obs {
                // Flush the worker's per-node profile deltas — once per
                // phase, never per task.
                for (node, (kind, d)) in &local.prof {
                    obs.profile.add(*node, *kind, d);
                }
            }
            let mut worker = local.worker;
            worker.tasks = local.tasks;
            self.worker_totals[me].merge(&worker);
            phase_total.merge(&worker);
            if let Some(obs) = &obs {
                // Per-worker series for the live exporter; the `{...}`
                // suffix is the telemetry label convention (psm-telemetry
                // parses it back out when rendering exposition format).
                obs.metrics
                    .counter(&format!("engine.worker.tasks{{worker=\"{me}\"}}"))
                    .add(worker.tasks);
                obs.metrics
                    .counter(&format!("engine.worker.steals{{worker=\"{me}\"}}"))
                    .add(worker.steals);
                obs.metrics
                    .counter(&format!("engine.worker.steal_attempts{{worker=\"{me}\"}}"))
                    .add(worker.steal_attempts);
                obs.metrics
                    .counter(&format!("engine.worker.idle_spins{{worker=\"{me}\"}}"))
                    .add(worker.idle_spins);
                obs.metrics
                    .counter(&format!("engine.worker.exec_ns{{worker=\"{me}\"}}"))
                    .add(worker.exec_ns);
                obs.metrics
                    .counter(&format!("engine.worker.lock_wait_ns{{worker=\"{me}\"}}"))
                    .add(worker.lock_wait_ns);
                obs.metrics
                    .gauge(&format!("engine.worker.max_queue_depth{{worker=\"{me}\"}}"))
                    .fetch_max(worker.max_queue_depth as i64);
            }
        }
        if let Some(obs) = &self.obs {
            obs.metrics.counter("engine.tasks").add(phase_total.tasks);
            obs.metrics.counter("engine.steals").add(phase_total.steals);
            obs.metrics
                .counter("engine.steal_attempts")
                .add(phase_total.steal_attempts);
            obs.metrics
                .counter("engine.idle_spins")
                .add(phase_total.idle_spins);
            obs.metrics
                .counter("engine.lock_wait_ns")
                .add(phase_total.lock_wait_ns);
            obs.metrics
                .gauge("engine.max_queue_depth")
                .fetch_max(phase_total.max_queue_depth as i64);
            obs.metrics
                .gauge("engine.faults_injected")
                .set(self.injected_faults.load(Ordering::Relaxed) as i64);
            obs.metrics
                .gauge("engine.lock_poison_recovered")
                .set(self.poison_recovered.load(Ordering::Relaxed) as i64);
            obs.metrics
                .gauge("engine.pool.spawned")
                .set(self.pool_stats.spawned as i64);
            obs.metrics
                .gauge("engine.pool.respawns")
                .set(self.pool_stats.respawns as i64);
            obs.metrics
                .gauge("engine.pool.live")
                .set(self.pool_stats.live as i64);
            obs.events.emit(
                "engine.phase",
                &[
                    ("kind", label.into()),
                    ("tasks", phase_total.tasks.into()),
                    ("steals", phase_total.steals.into()),
                    ("idle_spins", phase_total.idle_spins.into()),
                ],
            );
        }
        delta
    }

    /// Executes one grouped activation under its node's lock — every
    /// payload bound for the node this phase fragment, one lock
    /// acquisition — returning spawned child tasks (one per child node,
    /// carrying the whole emission batch).
    fn exec(&self, task: Task, local: &mut WorkerLocal, poison: bool) -> Vec<Task> {
        debug_assert!(
            self.topo.active[task.node.index()],
            "only active (two-input/terminal) nodes receive activations"
        );
        local.tasks += 1;
        let spec = self.network.node(task.node);
        let node = task.node.index() as u32;
        let key_test = self.index_tests[task.node.index()];
        // The profiler's node taxonomy; doubles as the activation-kind
        // label prefix, so flight records and `/profile` rows name
        // nodes identically across both runtimes.
        let prof_kind = match spec.kind {
            NodeKind::Join => ProfileKind::Join,
            NodeKind::Negative => ProfileKind::Negative,
            NodeKind::BetaMemory => ProfileKind::BetaMem,
            NodeKind::Terminal => ProfileKind::Terminal,
        };
        let flight_on = self.obs.as_ref().is_some_and(|o| o.flight.enabled());
        let prof_on = self.obs.as_ref().is_some_and(|o| o.profile.enabled());
        let children = &self.topo.token_children[task.node.index()];
        // Tokens emitted toward the children, in per-item order. Signs
        // ride along because a negative node inverts the sign of what it
        // forwards.
        let mut emitted: Vec<(Token, Sign)> = Vec::new();
        let mutex = &self.states[task.node.index()];
        let mut slot = if self.timing {
            let t0 = Instant::now();
            let guard = relock(mutex, &self.poison_recovered);
            local.worker.lock_wait_ns += t0.elapsed().as_nanos() as u64;
            guard
        } else {
            relock(mutex, &self.poison_recovered)
        };
        if poison {
            // Panic while holding the node lock, before any mutation:
            // the mutex is poisoned but guards a still-consistent value,
            // which is exactly what `relock` relies on.
            self.injected_faults.fetch_add(1, Ordering::Relaxed);
            panic!("injected fault: lock poison");
        }
        for (payload, sign) in task.items {
            let right_side = matches!(payload, Payload::Right(_));
            if flight_on {
                if let Some(obs) = &self.obs {
                    obs.flight.record(FlightKind::Activation {
                        node,
                        kind: match (prof_kind, right_side) {
                            (ProfileKind::Join, true) => "join-R",
                            (ProfileKind::Join, false) => "join-L",
                            (ProfileKind::Negative, true) => "neg-R",
                            (ProfileKind::Negative, false) => "neg-L",
                            (ProfileKind::BetaMem, _) => "bmem",
                            _ => "term",
                        },
                        wme: match &payload {
                            Payload::Right(id) => Some(id.index() as u32),
                            Payload::Left(_) => None,
                        },
                    });
                }
            }
            let pairs_before = local.pairs_scanned;
            let emitted_before = emitted.len();
            match (&mut *slot, payload) {
                (
                    NodeSlot::Join {
                        left,
                        left_idx,
                        right,
                        right_idx,
                    },
                    Payload::Right(wme_id),
                ) => {
                    let (old, new) = bump(right, wme_id, sign.delta());
                    // Scan (and maintain the index) only on a net
                    // presence transition.
                    if (old <= 0 && new == 1) || (old == 1 && new == 0) {
                        let wme = self.wme(wme_id);
                        let key = key_test.and_then(|t| wme.get(t.own_attr));
                        match key_test {
                            Some(_) => {
                                // An unkeyable WME (attribute absent)
                                // fails the equality test against every
                                // token; probe nothing.
                                if let Some(k) = &key {
                                    if let Some(bucket) = left_idx.get(k) {
                                        for token in bucket {
                                            local.pairs_scanned += 1;
                                            let (ok, n) = self.eval_tests(&spec.tests, token, wme);
                                            local.join_tests += n;
                                            if ok {
                                                emitted.push((token.extended(wme_id), sign));
                                            }
                                        }
                                    }
                                }
                            }
                            None => {
                                for (token, &presence) in left.iter() {
                                    if presence <= 0 {
                                        continue;
                                    }
                                    local.pairs_scanned += 1;
                                    let (ok, n) = self.eval_tests(&spec.tests, token, wme);
                                    local.join_tests += n;
                                    if ok {
                                        emitted.push((token.extended(wme_id), sign));
                                    }
                                }
                            }
                        }
                        if new == 1 {
                            idx_insert(right_idx, key, wme_id);
                        } else {
                            idx_remove(right_idx, key, &wme_id);
                        }
                    }
                    if new == 0 {
                        right.remove(&wme_id);
                    }
                }
                (
                    NodeSlot::Join {
                        left,
                        left_idx,
                        right,
                        right_idx,
                    },
                    Payload::Left(token),
                ) => {
                    let (old, new) = bump_token(left, &token, sign.delta());
                    if (old <= 0 && new == 1) || (old == 1 && new == 0) {
                        let key = key_test.and_then(|t| self.left_key(t, &token));
                        match key_test {
                            Some(_) => {
                                if let Some(k) = &key {
                                    if let Some(bucket) = right_idx.get(k) {
                                        for &wme_id in bucket {
                                            local.pairs_scanned += 1;
                                            let wme = self.wme(wme_id);
                                            let (ok, n) = self.eval_tests(&spec.tests, &token, wme);
                                            local.join_tests += n;
                                            if ok {
                                                emitted.push((token.extended(wme_id), sign));
                                            }
                                        }
                                    }
                                }
                            }
                            None => {
                                for (&wme_id, &presence) in right.iter() {
                                    if presence <= 0 {
                                        continue;
                                    }
                                    local.pairs_scanned += 1;
                                    let wme = self.wme(wme_id);
                                    let (ok, n) = self.eval_tests(&spec.tests, &token, wme);
                                    local.join_tests += n;
                                    if ok {
                                        emitted.push((token.extended(wme_id), sign));
                                    }
                                }
                            }
                        }
                        if new == 1 {
                            idx_insert(left_idx, key, token.clone());
                        } else {
                            idx_remove(left_idx, key, &token);
                        }
                    }
                    if new == 0 {
                        left.remove(&token);
                    }
                }
                (
                    NodeSlot::Negative {
                        left,
                        left_idx,
                        right,
                        right_idx,
                    },
                    Payload::Right(wme_id),
                ) => {
                    let (old, new) = bump(right, wme_id, sign.delta());
                    let wme = self.wme(wme_id);
                    let key = key_test.and_then(|t| wme.get(t.own_attr));
                    if old <= 0 && new == 1 {
                        idx_insert(right_idx, key, wme_id);
                    } else if old == 1 && new == 0 {
                        idx_remove(right_idx, key, &wme_id);
                    }
                    if new == 0 {
                        right.remove(&wme_id);
                    }
                    // Count adjustment is unconditional (every signed
                    // right activation shifts the match counts of the
                    // tokens it joins with).
                    match key_test {
                        Some(_) => {
                            if let Some(k) = &key {
                                if let Some(bucket) = left_idx.get(k) {
                                    for token in bucket {
                                        local.pairs_scanned += 1;
                                        let (ok, n) = self.eval_tests(&spec.tests, token, wme);
                                        local.join_tests += n;
                                        if !ok {
                                            continue;
                                        }
                                        let entry =
                                            left.get_mut(token).expect("indexed token is present");
                                        let old_blocked = entry.count >= 1;
                                        entry.count += sign.delta();
                                        let new_blocked = entry.count >= 1;
                                        if old_blocked != new_blocked {
                                            // Becoming blocked retracts;
                                            // unblocking asserts.
                                            let s =
                                                if new_blocked { Sign::Minus } else { Sign::Plus };
                                            debug_assert_eq!(s, sign.invert());
                                            emitted.push((token.clone(), s));
                                        }
                                    }
                                }
                            }
                        }
                        None => {
                            for (token, entry) in left.iter_mut() {
                                if entry.presence != 1 {
                                    continue;
                                }
                                local.pairs_scanned += 1;
                                let (ok, n) = self.eval_tests(&spec.tests, token, wme);
                                local.join_tests += n;
                                if !ok {
                                    continue;
                                }
                                let old_blocked = entry.count >= 1;
                                entry.count += sign.delta();
                                let new_blocked = entry.count >= 1;
                                if old_blocked != new_blocked {
                                    let s = if new_blocked { Sign::Minus } else { Sign::Plus };
                                    debug_assert_eq!(s, sign.invert());
                                    emitted.push((token.clone(), s));
                                }
                            }
                        }
                    }
                }
                (
                    NodeSlot::Negative {
                        left,
                        left_idx,
                        right,
                        right_idx,
                    },
                    Payload::Left(token),
                ) => {
                    match sign {
                        Sign::Plus => {
                            let entry = left.entry(token.clone()).or_default();
                            entry.presence += 1;
                            match entry.presence {
                                1 => {
                                    // Fresh net insert: count current matches.
                                    let key = key_test.and_then(|t| self.left_key(t, &token));
                                    let mut count = 0i32;
                                    let mut tests = 0u64;
                                    let mut scanned = 0u64;
                                    match key_test {
                                        Some(_) => {
                                            if let Some(k) = &key {
                                                if let Some(bucket) = right_idx.get(k) {
                                                    for &wme_id in bucket {
                                                        scanned += 1;
                                                        let wme = self.wme(wme_id);
                                                        let (ok, n) = self.eval_tests(
                                                            &spec.tests,
                                                            &token,
                                                            wme,
                                                        );
                                                        tests += n;
                                                        if ok {
                                                            count += right
                                                                .get(&wme_id)
                                                                .copied()
                                                                .unwrap_or(0);
                                                        }
                                                    }
                                                }
                                            }
                                        }
                                        None => {
                                            for (&wme_id, &mult) in right.iter() {
                                                if mult <= 0 {
                                                    continue;
                                                }
                                                scanned += 1;
                                                let wme = self.wme(wme_id);
                                                let (ok, n) =
                                                    self.eval_tests(&spec.tests, &token, wme);
                                                tests += n;
                                                if ok {
                                                    count += mult;
                                                }
                                            }
                                        }
                                    }
                                    local.pairs_scanned += scanned;
                                    local.join_tests += tests;
                                    entry.count = count;
                                    idx_insert(left_idx, key, token.clone());
                                    if count <= 0 {
                                        emitted.push((token, Sign::Plus));
                                    }
                                }
                                0 => {
                                    // A debt cancelled; net nothing happened.
                                    left.remove(&token);
                                }
                                _ => {
                                    debug_assert!(false, "duplicate token insert at negative node")
                                }
                            }
                        }
                        Sign::Minus => {
                            let entry = left.entry(token.clone()).or_default();
                            entry.presence -= 1;
                            match entry.presence {
                                0 => {
                                    let unblocked = entry.count <= 0;
                                    let key = key_test.and_then(|t| self.left_key(t, &token));
                                    idx_remove(left_idx, key, &token);
                                    left.remove(&token);
                                    if unblocked {
                                        emitted.push((token, Sign::Minus));
                                    }
                                }
                                -1 => { /* deletion raced ahead; keep the debt */ }
                                _ => debug_assert!(false, "negative-node presence out of range"),
                            }
                        }
                    }
                }
                (NodeSlot::Terminal, Payload::Left(token)) => {
                    let inst = Instantiation::new(
                        self.topo.terminal_production[task.node.index()]
                            .expect("terminal has production"),
                        token.into_wmes(),
                    );
                    let single = match sign {
                        Sign::Plus => MatchDelta {
                            added: vec![inst],
                            removed: vec![],
                        },
                        Sign::Minus => MatchDelta {
                            added: vec![],
                            removed: vec![inst],
                        },
                    };
                    local.delta.merge(single);
                }
                (slot, payload) => unreachable!(
                    "invalid activation: {slot:?} with {payload:?}",
                    slot = match slot {
                        NodeSlot::Join { .. } => "join",
                        NodeSlot::Negative { .. } => "negative",
                        NodeSlot::Terminal => "terminal",
                        NodeSlot::Inactive => "inactive",
                    },
                    payload = match payload {
                        Payload::Right(_) => "right",
                        Payload::Left(_) => "left",
                    }
                ),
            }
            if prof_on {
                // One profiler delta per payload, so grouped execution
                // reports the same per-activation rows as per-change
                // dispatch did; terminals emit conflict-set changes
                // instead of tokens.
                let tokens_out = if prof_kind == ProfileKind::Terminal {
                    1
                } else {
                    (emitted.len() - emitted_before) as u64
                };
                let (_, d) = local
                    .prof
                    .entry(node)
                    .or_insert((prof_kind, NodeDelta::default()));
                d.record(right_side, local.pairs_scanned - pairs_before, tokens_out);
            }
        }
        drop(slot);
        if emitted.is_empty() || children.is_empty() {
            return Vec::new();
        }
        // One child task per child node, carrying the whole emission
        // batch in per-item order (token clones are refcount bumps).
        children
            .iter()
            .map(|&child| Task {
                node: child,
                items: emitted
                    .iter()
                    .map(|(t, s)| (Payload::Left(t.clone()), *s))
                    .collect(),
            })
            .collect()
    }

    /// Resolves a left token's index key under `test`: the value at
    /// `(token_pos, token_attr)`, read from the engine's own WME store.
    /// The store retains every WME a resident token references until
    /// the batch that retracts it completes, so the key resolves
    /// identically at insert and removal time — the engine-side
    /// analogue of the sequential matcher's captured insert-time keys.
    fn left_key(&self, test: JoinTest, token: &Token) -> Option<Value> {
        token
            .wme_at(test.token_pos)
            .and_then(|id| self.wme(id).get(test.token_attr))
    }

    fn wme(&self, id: WmeId) -> &Wme {
        self.store[id.index()]
            .as_ref()
            .expect("token/right-memory WME resident in store")
    }

    fn eval_tests(&self, tests: &[JoinTest], token: &Token, wme: &Wme) -> (bool, u64) {
        let mut n = 0u64;
        for t in tests {
            n += 1;
            let own = wme.get(t.own_attr);
            let other = token
                .wme_at(t.token_pos)
                .map(|id| self.wme(id))
                .and_then(|w| w.get(t.token_attr));
            match (own, other) {
                (Some(a), Some(b)) if a.compare(t.op, b) => {}
                _ => return (false, n),
            }
        }
        (true, n)
    }
}

/// Decrements the phase's pending-task counter on drop, including during
/// unwinding, so a panicking activation cannot hang the worker pool.
struct PendingGuard<'a>(&'a AtomicUsize);

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Adjusts a signed-count map entry, returning `(old, new)` counts.
fn bump(map: &mut FxHashMap<WmeId, i32>, key: WmeId, delta: i32) -> (i32, i32) {
    let e = map.entry(key).or_insert(0);
    let old = *e;
    *e += delta;
    (old, *e)
}

fn bump_token(map: &mut FxHashMap<Token, i32>, key: &Token, delta: i32) -> (i32, i32) {
    let e = map.entry(key.clone()).or_insert(0);
    let old = *e;
    *e += delta;
    (old, *e)
}

impl Matcher for ParallelReteMatcher {
    fn add_wme(&mut self, wm: &WorkingMemory, id: WmeId) -> MatchDelta {
        self.process(wm, &[Change::Add(id)])
    }

    fn remove_wme(&mut self, wm: &WorkingMemory, id: WmeId) -> MatchDelta {
        self.process(wm, &[Change::Remove(id)])
    }

    /// Processes a whole firing's batch: retractions in parallel, a
    /// barrier, then assertions in parallel (DESIGN.md §6).
    fn process(&mut self, wm: &WorkingMemory, changes: &[Change]) -> MatchDelta {
        if let Some(s) = &self.sanitizer {
            s.check_batch(wm, changes);
        }
        self.stats.batches += 1;
        self.stats.changes += changes.len() as u64;
        for change in changes {
            self.ingest(wm, change.wme());
        }
        let mut removes = TaskGroups::default();
        let mut adds = TaskGroups::default();
        let mut removed_ids = Vec::new();
        for change in changes {
            match change {
                Change::Remove(id) => {
                    self.seed_tasks(*id, Sign::Minus, &mut removes);
                    removed_ids.push(*id);
                }
                Change::Add(id) => self.seed_tasks(*id, Sign::Plus, &mut adds),
            }
        }
        if let Some(obs) = &self.obs {
            self.timing = self.timing || obs.detail();
        }
        let mut delta = self.run_phase("remove", removes.into_tasks());
        delta.merge(self.run_phase("add", adds.into_tasks()));
        for id in removed_ids {
            self.store[id.index()] = None;
        }
        delta
    }

    fn algorithm_name(&self) -> &'static str {
        "parallel-rete"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::{parse_program, parse_wme, SymbolTable};
    use psm_obs::Rng64;
    use rete::ReteMatcher;

    fn parallel(src: &str, threads: usize) -> (ops5::Program, ParallelReteMatcher) {
        let program = parse_program(src).unwrap();
        let m = ParallelReteMatcher::compile(
            &program,
            ParallelOptions {
                threads,
                share: true,
            },
        )
        .unwrap();
        (program, m)
    }

    /// Fires a fixed action at one `(phase, seq)` coordinate.
    struct OneShot {
        phase: u64,
        seq: u64,
        action: FaultAction,
    }

    impl FaultInjector for OneShot {
        fn on_task(&self, phase: u64, seq: u64, _worker: usize) -> FaultAction {
            if phase == self.phase && seq == self.seq {
                self.action
            } else {
                FaultAction::None
            }
        }
    }

    #[test]
    fn injected_panic_is_contained_and_counted() {
        for action in [
            FaultAction::PanicWorker,
            FaultAction::PoisonLock,
            FaultAction::DropTask,
        ] {
            let (program, mut m) = parallel("(p r (a ^x 1) --> (remove 1))", 2);
            let mut wm = WorkingMemory::new();
            let mut syms = program.symbols.clone();
            let (id, _) = wm.add(parse_wme("(a ^x 1)", &mut syms).unwrap());
            // Phase 2 is the "add" phase of the first batch; seq 0 is
            // its first task.
            m.set_fault_injector(Some(Arc::new(OneShot {
                phase: 2,
                seq: 0,
                action,
            })));
            let _ = m.process(&wm, &[Change::Add(id)]);
            assert_eq!(m.take_faults(), 1, "{action:?} counted");
            assert_eq!(m.take_faults(), 0, "count resets");
            if action == FaultAction::PoisonLock {
                // The poisoned node lock must stay usable.
                let _ = m.resident_tokens();
                assert!(m.poison_recoveries() > 0);
            }
        }
    }

    #[test]
    fn unexpected_panic_still_propagates_without_injector() {
        // A sanity check that containment is gated on the injector: with
        // one attached, even repeated faults never unwind into the caller.
        let (program, mut m) = parallel("(p r (a ^x 1) --> (remove 1))", 3);
        let mut wm = WorkingMemory::new();
        let mut syms = program.symbols.clone();
        m.set_fault_injector(Some(Arc::new(OneShot {
            phase: 2,
            seq: 0,
            action: FaultAction::PanicWorker,
        })));
        let (id, _) = wm.add(parse_wme("(a ^x 1)", &mut syms).unwrap());
        let _ = m.process(&wm, &[Change::Add(id)]);
        assert_eq!(m.take_faults(), 1);
    }

    #[test]
    fn every_worker_participates_on_small_batch() {
        // The worker-0 drain-race regression: with the old
        // spawn-per-phase design, worker 0 drained a small injector
        // before its siblings finished spawning, so they exited with
        // zero tasks, zero steals, and zero steal attempts — the
        // counters measured spawn latency, not contention. Under the
        // pool's release barrier, every worker is eligible before any
        // pop; the drain loop then guarantees each worker executes at
        // least one task or probes every peer deque before it can see
        // the phase as drained.
        let threads = 4;
        let (program, mut m) = parallel(EQ_PROGRAM, threads);
        let mut wm = WorkingMemory::new();
        let mut syms = program.symbols.clone();
        // A batch of >= 2·threads seed tasks.
        let mut batch = Vec::new();
        for class in ["a", "b", "c", "goal"] {
            for x in 0..2 {
                let (id, _) = wm.add(parse_wme(&format!("({class} ^x {x})"), &mut syms).unwrap());
                batch.push(Change::Add(id));
            }
        }
        assert!(batch.len() >= 2 * threads);
        let _ = m.process(&wm, &batch);
        for (me, w) in m.worker_stats().iter().enumerate() {
            assert!(
                w.tasks > 0 || w.steal_attempts > 0,
                "worker {me} neither executed a task nor probed a peer: {w:?}"
            );
        }
    }

    #[test]
    fn pool_spawns_once_per_matcher_lifetime() {
        let (program, mut m) = parallel(EQ_PROGRAM, 3);
        assert_eq!(m.pool_stats(), crate::PoolStats::default(), "pool is lazy");
        let mut wm = WorkingMemory::new();
        let mut syms = program.symbols.clone();
        for x in 0..8 {
            let (id, _) = wm.add(parse_wme(&format!("(a ^x {x})"), &mut syms).unwrap());
            let _ = m.add_wme(&wm, id);
        }
        let s = m.pool_stats();
        assert_eq!(s.spawned, 3, "threads spawned once, not per phase");
        assert_eq!(s.respawns, 0);
        assert_eq!(s.live, 3);
        assert_eq!(m.stats().batches, 8, "many batches ran on that one crew");
    }

    #[test]
    fn panicked_worker_is_respawned_and_pool_survives() {
        let (program, mut m) = parallel(EQ_PROGRAM, 2);
        let mut wm = WorkingMemory::new();
        let mut syms = program.symbols.clone();
        // Kill a worker mid-phase on the first batch (phase 2 = its
        // "add" phase), then keep the matcher running.
        m.set_fault_injector(Some(Arc::new(OneShot {
            phase: 2,
            seq: 0,
            action: FaultAction::PanicWorker,
        })));
        let (id, _) = wm.add(parse_wme("(a ^x 1)", &mut syms).unwrap());
        let _ = m.process(&wm, &[Change::Add(id)]);
        assert_eq!(m.take_faults(), 1);
        let s = m.pool_stats();
        assert_eq!(s.respawns, 1, "the dead worker was replaced");
        assert_eq!(s.spawned, 3, "2 initial + 1 respawn");
        assert_eq!(s.live, 2, "no thread leak");
        // The pool survives >= 3 subsequent batches with a full crew.
        for x in 2..6 {
            let (id, _) = wm.add(parse_wme(&format!("(b ^x {x})"), &mut syms).unwrap());
            let _ = m.add_wme(&wm, id);
        }
        assert_eq!(m.take_faults(), 0, "one-shot plan fired exactly once");
        let s = m.pool_stats();
        assert_eq!(s.respawns, 1);
        assert_eq!(s.live, 2, "final worker count equals configured threads");
    }

    #[test]
    fn single_ce_roundtrip() {
        let (program, mut m) = parallel("(p r (a ^x 1) --> (remove 1))", 2);
        let mut wm = WorkingMemory::new();
        let mut syms = program.symbols.clone();
        let (id, _) = wm.add(parse_wme("(a ^x 1)", &mut syms).unwrap());
        let d = m.add_wme(&wm, id);
        assert_eq!(d.added.len(), 1);
        let d = m.remove_wme(&wm, id);
        assert_eq!(d.removed.len(), 1);
    }

    #[test]
    fn batch_remove_then_add_order() {
        // A modify arrives as [Remove(old), Add(new)] in one batch.
        let (program, mut m) = parallel("(p r (c ^on yes) --> (modify 1 ^on no))", 4);
        let mut wm = WorkingMemory::new();
        let mut syms = program.symbols.clone();
        let (old, _) = wm.add(parse_wme("(c ^on yes)", &mut syms).unwrap());
        let d = m.add_wme(&wm, old);
        assert_eq!(d.added.len(), 1);
        let (new, _) = wm.add(parse_wme("(c ^on no)", &mut syms).unwrap());
        let d = m.process(&wm, &[Change::Remove(old), Change::Add(new)]);
        wm.remove(old);
        assert_eq!(d.removed.len(), 1);
        assert!(d.added.is_empty());
    }

    #[test]
    fn negative_first_ce() {
        let (program, mut m) = parallel("(p r - (blocker) (a ^x 1) --> (remove 2))", 2);
        let mut wm = WorkingMemory::new();
        let mut syms = program.symbols.clone();
        let (a, _) = wm.add(parse_wme("(a ^x 1)", &mut syms).unwrap());
        let d = m.add_wme(&wm, a);
        assert_eq!(d.added.len(), 1, "top token passes the leading negation");
        let (b, _) = wm.add(parse_wme("(blocker)", &mut syms).unwrap());
        let d = m.add_wme(&wm, b);
        assert_eq!(d.removed.len(), 1);
    }

    /// The main correctness property: for any change sequence and any
    /// thread count, the parallel engine's (canonicalized) deltas equal
    /// the sequential Rete matcher's.
    fn equivalence_run(src: &str, seed: u64, steps: usize, threads: usize) {
        let program = parse_program(src).unwrap();
        let mut seq = ReteMatcher::compile(&program).unwrap();
        let mut par = ParallelReteMatcher::compile(
            &program,
            ParallelOptions {
                threads,
                share: true,
            },
        )
        .unwrap();
        let mut rng = Rng64::new(seed);
        let mut syms: SymbolTable = program.symbols.clone();
        let classes = ["a", "b", "c", "goal", "veto"];
        let mut wm = WorkingMemory::new();
        let mut live: Vec<WmeId> = Vec::new();

        for step in 0..steps {
            // Build a batch of 1-6 changes, removes before adds.
            let n_removes = if live.is_empty() {
                0
            } else {
                rng.gen_range(0..=live.len().min(2))
            };
            let n_adds = rng.gen_range(1..=4usize);
            let mut batch = Vec::new();
            for _ in 0..n_removes {
                let id = live.swap_remove(rng.gen_range(0..live.len()));
                batch.push(Change::Remove(id));
            }
            for _ in 0..n_adds {
                let class = classes[rng.gen_range(0..classes.len())];
                let x = rng.gen_range(0..3i32);
                let wme = parse_wme(&format!("({class} ^x {x})"), &mut syms).unwrap();
                let (id, _) = wm.add(wme);
                live.push(id);
                batch.push(Change::Add(id));
            }
            let mut d_seq = seq.process(&wm, &batch);
            let mut d_par = par.process(&wm, &batch);
            for c in &batch {
                if let Change::Remove(id) = c {
                    wm.remove(*id);
                }
            }
            d_seq.canonicalize();
            d_par.canonicalize();
            assert_eq!(
                d_seq, d_par,
                "divergence at step {step} (threads={threads}, seed={seed})"
            );
        }
    }

    const EQ_PROGRAM: &str = r#"
        (p pair (a ^x <v>) (b ^x <v>) --> (remove 1))
        (p triple (a ^x <v>) (b ^x <v>) (c ^x <v>) --> (remove 1))
        (p guarded (goal ^x <v>) - (veto ^x <v>) --> (remove 1))
        (p neg-mid (a ^x <v>) - (veto ^x <v>) (c ^x <v>) --> (remove 1))
        (p self (a ^x <v>) (a ^x <v>) --> (remove 1))
    "#;

    #[test]
    fn equivalent_to_sequential_one_thread() {
        equivalence_run(EQ_PROGRAM, 11, 60, 1);
    }

    #[test]
    fn equivalent_to_sequential_four_threads() {
        for seed in 0..4 {
            equivalence_run(EQ_PROGRAM, 100 + seed, 60, 4);
        }
    }

    #[test]
    fn equivalent_to_sequential_eight_threads() {
        for seed in 0..3 {
            equivalence_run(EQ_PROGRAM, 200 + seed, 50, 8);
        }
    }

    #[test]
    fn state_fully_purged_when_wm_emptied() {
        let (program, mut m) = parallel(EQ_PROGRAM, 4);
        let mut wm = WorkingMemory::new();
        let mut syms = program.symbols.clone();
        let mut ids = Vec::new();
        for class in ["a", "b", "c", "goal", "veto"] {
            for x in 0..3 {
                let (id, _) = wm.add(parse_wme(&format!("({class} ^x {x})"), &mut syms).unwrap());
                m.add_wme(&wm, id);
                ids.push(id);
            }
        }
        assert!(m.resident_tokens() > 0, "state built up");
        for id in ids {
            m.remove_wme(&wm, id);
            wm.remove(id);
        }
        assert_eq!(m.resident_tokens(), 0, "all token state purged");
    }

    #[test]
    fn engine_is_send() {
        // The matcher crosses thread boundaries in user code (e.g. a
        // driver thread); guard the auto-traits.
        fn assert_send<T: Send>() {}
        assert_send::<ParallelReteMatcher>();
        assert_send::<crate::ProductionParallelMatcher>();
    }

    #[test]
    fn thread_count_clamped_to_one() {
        let program = parse_program("(p r (a ^x 1) --> (halt))").unwrap();
        let m = ParallelReteMatcher::compile(
            &program,
            ParallelOptions {
                threads: 0,
                share: true,
            },
        )
        .unwrap();
        assert_eq!(m.threads(), 1);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let (program, mut m) = parallel("(p r (a ^x 1) --> (halt))", 2);
        let wm = WorkingMemory::new();
        let d = m.process(&wm, &[]);
        assert!(d.is_empty());
        assert_eq!(m.stats().batches, 1);
        let _ = program;
    }

    #[test]
    fn stats_accumulate() {
        let (program, mut m) = parallel("(p r (a ^x <v>) (b ^x <v>) --> (remove 1))", 2);
        let mut wm = WorkingMemory::new();
        let mut syms = program.symbols.clone();
        let (a, _) = wm.add(parse_wme("(a ^x 1)", &mut syms).unwrap());
        let (b, _) = wm.add(parse_wme("(b ^x 1)", &mut syms).unwrap());
        m.process(&wm, &[Change::Add(a), Change::Add(b)]);
        let s = m.stats();
        assert_eq!(s.batches, 1);
        assert_eq!(s.changes, 2);
        assert!(s.tasks >= 2);
        assert!(s.constant_tests > 0);
    }

    #[test]
    fn unshared_compile_matches_too() {
        let program = parse_program(EQ_PROGRAM).unwrap();
        let mut seq = ReteMatcher::compile(&program).unwrap();
        let mut par = ParallelReteMatcher::compile(
            &program,
            ParallelOptions {
                threads: 4,
                share: false,
            },
        )
        .unwrap();
        let mut wm = WorkingMemory::new();
        let mut syms = program.symbols.clone();
        for lit in [
            "(a ^x 1)",
            "(b ^x 1)",
            "(c ^x 1)",
            "(goal ^x 1)",
            "(veto ^x 1)",
        ] {
            let (id, _) = wm.add(parse_wme(lit, &mut syms).unwrap());
            let mut d1 = seq.add_wme(&wm, id);
            let mut d2 = par.add_wme(&wm, id);
            d1.canonicalize();
            d2.canonicalize();
            assert_eq!(d1, d2);
        }
    }

    #[test]
    fn per_node_profiler_collects_in_parallel() {
        let (program, mut m) = parallel("(p r (a ^x <v>) (b ^x <v>) --> (remove 1))", 2);
        let obs = Arc::new(Obs::with_profile(16, 64, 64));
        m.attach_obs(Arc::clone(&obs));
        let mut wm = WorkingMemory::new();
        let mut syms = program.symbols.clone();
        for lit in ["(a ^x 1)", "(a ^x 2)", "(b ^x 1)"] {
            let (id, _) = wm.add(parse_wme(lit, &mut syms).unwrap());
            m.process(&wm, &[Change::Add(id)]);
        }
        let snap = obs.profile.snapshot();
        assert_eq!(snap.overflow, 0);
        let joins: Vec<_> = snap.rows.iter().filter(|r| r.kind == "join").collect();
        assert_eq!(joins.len(), 2, "two join nodes touched");
        // Top join: both `a`s pass straight through the dummy token.
        let top = joins.iter().find(|r| r.right == 2).expect("top join");
        assert_eq!(top.pairs, 2);
        assert_eq!(top.tokens_out, 2);
        assert!((top.selectivity - 1.0).abs() < 1e-12);
        // The b-join: one right transition probing its value bucket,
        // which holds exactly the one `^x 1` token (the `^x 2` token
        // lives in a different bucket and is never scanned).
        let b = joins.iter().find(|r| r.right == 1).expect("b join");
        assert_eq!(b.left, 2);
        assert_eq!(b.pairs, 1);
        assert_eq!(b.tokens_out, 1);
        assert!((b.selectivity - 1.0).abs() < 1e-12);
        let term = snap
            .rows
            .iter()
            .find(|r| r.kind == "term")
            .expect("terminal row");
        assert_eq!(term.tokens_out, 1);
        // Flight records use the same activation labels as the
        // sequential matcher, so `/explain` and `/profile` agree.
        let flight_json: String = obs
            .flight
            .explain_cycle(0)
            .iter()
            .map(|r| r.to_json())
            .collect();
        assert!(
            flight_json.contains("join-R"),
            "unified labels: {flight_json}"
        );
        assert!(!flight_json.contains("parallel-right"));
    }

    #[test]
    fn parallel_profiler_off_costs_nothing() {
        let (program, mut m) = parallel("(p r (a ^x <v>) (b ^x <v>) --> (remove 1))", 2);
        let obs = Arc::new(Obs::with_flight(16, 16));
        m.attach_obs(Arc::clone(&obs));
        let mut wm = WorkingMemory::new();
        let mut syms = program.symbols.clone();
        let (id, _) = wm.add(parse_wme("(a ^x 1)", &mut syms).unwrap());
        m.process(&wm, &[Change::Add(id)]);
        assert!(!obs.profile.enabled());
        assert_eq!(obs.profile.snapshot().retained, 0);
    }
}
