//! Golden test for the Prometheus text exposition renderer: exact
//! output for a representative registry, plus the format's edge rules
//! (label escaping, name sanitizing, one `# TYPE` per family,
//! cumulative `_bucket` lines closed by `+Inf`).

use psm_obs::Obs;
use psm_telemetry::prom;

#[test]
fn golden_exposition() {
    let obs = Obs::new(0);
    obs.metrics
        .counter("engine.worker.tasks{worker=\"0\"}")
        .add(10);
    obs.metrics
        .counter("engine.worker.tasks{worker=\"1\"}")
        .add(20);
    obs.metrics.counter("interp.firings").add(3);
    obs.metrics.gauge("interp.conflict_size").set(-2);
    let h = obs.metrics.histogram("phase.match_ns{phase=\"match\"}");
    h.record(0);
    h.record(5);
    h.record(5);
    h.record(300);

    // Buckets are log2: 0 -> le="0", 5 -> [4,8) -> le="7",
    // 300 -> [256,512) -> le="511"; cumulative counts close at +Inf.
    let expected = "\
# TYPE engine_worker_tasks counter
engine_worker_tasks{worker=\"0\"} 10
engine_worker_tasks{worker=\"1\"} 20
# TYPE interp_firings counter
interp_firings 3
# TYPE interp_conflict_size gauge
interp_conflict_size -2
# TYPE phase_match_ns histogram
phase_match_ns_bucket{phase=\"match\",le=\"0\"} 1
phase_match_ns_bucket{phase=\"match\",le=\"7\"} 3
phase_match_ns_bucket{phase=\"match\",le=\"511\"} 4
phase_match_ns_bucket{phase=\"match\",le=\"+Inf\"} 4
phase_match_ns_sum{phase=\"match\"} 310
phase_match_ns_count{phase=\"match\"} 4
";
    assert_eq!(prom::render(&obs.metrics.snapshot()), expected);
}

#[test]
fn one_type_line_per_family() {
    let obs = Obs::new(0);
    for w in 0..4 {
        obs.metrics
            .counter(&format!("engine.worker.steals{{worker=\"{w}\"}}"))
            .inc();
    }
    let text = prom::render(&obs.metrics.snapshot());
    assert_eq!(
        text.matches("# TYPE engine_worker_steals counter").count(),
        1,
        "family header must appear exactly once:\n{text}"
    );
    assert_eq!(text.matches("engine_worker_steals{worker=").count(), 4);
}

#[test]
fn label_values_are_escaped() {
    let obs = Obs::new(0);
    obs.metrics.counter("weird.metric{path=\"a\\b\"}").inc();
    let text = prom::render(&obs.metrics.snapshot());
    assert!(
        text.contains("weird_metric{path=\"a\\\\b\"} 1"),
        "backslash must be escaped:\n{text}"
    );
}

#[test]
fn names_are_sanitized() {
    let obs = Obs::new(0);
    obs.metrics.counter("9th.metric-with/odd chars").inc();
    let text = prom::render(&obs.metrics.snapshot());
    assert!(text.contains("_9th_metric_with_odd_chars 1"), "{text}");
}

#[test]
fn top_bucket_folds_into_inf() {
    let obs = Obs::new(0);
    let h = obs.metrics.histogram("h");
    h.record(u64::MAX); // lands in bucket 64, whose bound is u64::MAX
    let text = prom::render(&obs.metrics.snapshot());
    assert!(
        !text.contains(&format!("le=\"{}\"", u64::MAX)),
        "no finite bucket line for the top bucket:\n{text}"
    );
    assert!(text.contains("h_bucket{le=\"+Inf\"} 1"));
}

#[test]
fn empty_snapshot_renders_empty() {
    let obs = Obs::new(0);
    assert_eq!(prom::render(&obs.metrics.snapshot()), "");
}
