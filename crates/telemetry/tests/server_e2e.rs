//! End-to-end: boot the telemetry server on an ephemeral port and
//! exercise every endpoint over a real TCP connection.

use std::sync::Arc;
use std::time::Duration;

use psm_obs::{FlightKind, Obs};
use psm_telemetry::client::{http_get, Json};
use psm_telemetry::{TelemetryConfig, TelemetryServer};

const TIMEOUT: Duration = Duration::from_secs(5);

fn live_obs() -> Arc<Obs> {
    let obs = Arc::new(Obs::with_flight(64, 64));
    obs.set_detail(true);
    obs.metrics.counter("interp.firings").add(2);
    obs.metrics
        .counter("engine.worker.tasks{worker=\"0\"}")
        .add(11);
    obs.metrics.gauge("interp.conflict_size").set(4);
    obs.metrics.histogram("phase.match_ns").record(1000);
    obs.events.emit("tick", &[("n", 1u64.into())]);
    obs.flight.set_cycle(1);
    obs.flight.record(FlightKind::WmeChange {
        wme: 7,
        time_tag: 42,
        is_add: true,
    });
    obs.flight.record(FlightKind::Firing {
        rule: "demo-rule".to_string(),
        wmes: vec![7],
        time_tags: vec![42],
    });
    obs
}

#[test]
fn serves_all_endpoints_over_tcp() {
    let server = TelemetryServer::start(live_obs(), &TelemetryConfig::default()).expect("binds");
    let addr = server.local_addr();

    let (status, body) = http_get(addr, "/metrics", TIMEOUT).expect("/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("# TYPE interp_firings counter"));
    assert!(body.contains("interp_firings 2"));
    assert!(body.contains("engine_worker_tasks{worker=\"0\"} 11"));
    assert!(body.contains("phase_match_ns_bucket{le=\"+Inf\"} 1"));

    let (status, body) = http_get(addr, "/healthz", TIMEOUT).expect("/healthz");
    assert_eq!(status, 200);
    let health = Json::parse(&body).expect("healthz is JSON");
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(health.get("firings").and_then(Json::as_u64), Some(2));

    let (status, body) = http_get(addr, "/snapshot", TIMEOUT).expect("/snapshot");
    assert_eq!(status, 200);
    let snap = Json::parse(&body).expect("snapshot is JSON");
    assert_eq!(snap.get("events").map(|e| e.items().len()), Some(1));
    assert_eq!(
        snap.get("flight")
            .and_then(|f| f.get("len"))
            .and_then(Json::as_u64),
        Some(2)
    );

    let (status, body) =
        http_get(addr, "/explain?rule=demo-rule&instance=0", TIMEOUT).expect("/explain");
    assert_eq!(status, 200);
    let ex = Json::parse(&body).expect("explain is JSON");
    assert_eq!(ex.get("found").and_then(Json::as_bool), Some(true));
    assert_eq!(
        ex.get("time_tags").map(|t| t.items().to_vec()),
        Some(vec![Json::Num(42.0)])
    );

    let (status, _) = http_get(addr, "/explain?cycle=1", TIMEOUT).expect("/explain cycle");
    assert_eq!(status, 200);

    let (status, _) = http_get(addr, "/missing", TIMEOUT).expect("404 path");
    assert_eq!(status, 404);

    server.shutdown();
}

#[test]
fn degraded_supervisor_state_flips_healthz() {
    let obs = live_obs();
    obs.metrics.gauge("fault.tier").set(2);
    obs.metrics.gauge("fault.last_cycle_deadline_miss").set(1);
    obs.metrics.counter("fault.recoveries").inc();
    let server = TelemetryServer::start(obs, &TelemetryConfig::default()).expect("binds");
    let (status, body) = http_get(server.local_addr(), "/healthz", TIMEOUT).expect("/healthz");
    assert_eq!(status, 200);
    let health = Json::parse(&body).expect("healthz is JSON");
    assert_eq!(
        health.get("status").and_then(Json::as_str),
        Some("degraded")
    );
    assert_eq!(
        health.get("tier_name").and_then(Json::as_str),
        Some("naive")
    );
    assert_eq!(
        health
            .get("last_cycle_deadline_miss")
            .and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(health.get("recoveries").and_then(Json::as_u64), Some(1));
    server.shutdown();
}

#[test]
fn shutdown_joins_and_port_closes() {
    let server = TelemetryServer::start(live_obs(), &TelemetryConfig::default()).expect("binds");
    let addr = server.local_addr();
    assert!(http_get(addr, "/metrics", TIMEOUT).is_ok());
    server.shutdown();
    // After shutdown either the connect fails or the read returns
    // nothing useful; a fresh server can rebind immediately on a new
    // ephemeral port regardless.
    let again = TelemetryServer::start(live_obs(), &TelemetryConfig::default()).expect("rebinds");
    assert!(http_get(again.local_addr(), "/healthz", TIMEOUT).is_ok());
    again.shutdown();
}

#[test]
fn concurrent_scrapes_all_answer() {
    let server = TelemetryServer::start(
        live_obs(),
        &TelemetryConfig {
            workers: 4,
            ..TelemetryConfig::default()
        },
    )
    .expect("binds");
    let addr = server.local_addr();
    let handles: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let (status, body) = http_get(addr, "/metrics", TIMEOUT).expect("scrape");
                assert_eq!(status, 200);
                assert!(body.contains("interp_firings"));
            })
        })
        .collect();
    for h in handles {
        h.join().expect("scraper thread");
    }
    server.shutdown();
}
