//! Golden `/timeseries` JSON over a real ephemeral-port server. The
//! ring is fed with `sample_at` (explicit timestamps), so the exact
//! response bytes are deterministic and the expected strings can be
//! literal.

use std::sync::Arc;
use std::time::Duration;

use psm_obs::Obs;
use psm_telemetry::client::{http_get, Json};
use psm_telemetry::{TelemetryConfig, TelemetryServer};

const TIMEOUT: Duration = Duration::from_secs(5);

/// Two counters (one labeled), one gauge, sampled at t=100 and t=200.
fn sampled_obs() -> Arc<Obs> {
    let obs = Arc::new(Obs::with_history(0, 0, 0, 16));
    let firings = obs.metrics.counter("interp.firings");
    let tasks = obs.metrics.counter("engine.worker.tasks{worker=\"0\"}");
    let depth = obs.metrics.gauge("interp.conflict_size");
    firings.add(5);
    tasks.add(3);
    depth.set(4);
    obs.history.sample_at(100, &obs.metrics);
    firings.add(2);
    tasks.add(1);
    depth.set(6);
    obs.history.sample_at(200, &obs.metrics);
    obs
}

#[test]
fn golden_timeseries_json() {
    let server = TelemetryServer::start(sampled_obs(), &TelemetryConfig::default()).expect("binds");
    let addr = server.local_addr();

    // Exact series body for one counter: first window carries the
    // cumulative value at first sample (5), second the delta (2).
    let (status, body) =
        http_get(addr, "/timeseries?metric=interp.firings", TIMEOUT).expect("metric query");
    assert_eq!(status, 200);
    assert!(
        body.contains(
            "\"series\":[{\"name\":\"interp.firings\",\"kind\":\"counter\",\
             \"base\":0,\"points\":[[100,5],[200,2]]}]"
        ),
        "golden counter series mismatch: {body}"
    );

    // Gauge series store levels, not deltas.
    let (status, body) =
        http_get(addr, "/timeseries?metric=interp.conflict_size", TIMEOUT).expect("gauge query");
    assert_eq!(status, 200);
    assert!(
        body.contains(
            "{\"name\":\"interp.conflict_size\",\"kind\":\"gauge\",\
             \"base\":0,\"points\":[[100,4],[200,6]]}"
        ),
        "golden gauge series mismatch: {body}"
    );

    // Labeled family by prefix, trimmed to the last window.
    let (status, body) = http_get(
        addr,
        "/timeseries?metric=engine.worker.tasks&window=1",
        TIMEOUT,
    )
    .expect("family query");
    assert_eq!(status, 200);
    assert!(
        body.contains(
            "{\"name\":\"engine.worker.tasks{worker=\\\"0\\\"}\",\"kind\":\"counter\",\
             \"base\":3,\"points\":[[200,1]]}"
        ),
        "golden family series mismatch: {body}"
    );
    assert!(body.contains("\"window\":1"));

    // Index form (no metric): summaries with lengths, no points.
    let (status, body) = http_get(addr, "/timeseries", TIMEOUT).expect("index");
    assert_eq!(status, 200);
    let j = Json::parse(&body).expect("index is JSON");
    assert_eq!(j.get("enabled").and_then(Json::as_bool), Some(true));
    assert_eq!(j.get("samples").and_then(Json::as_u64), Some(2));
    assert_eq!(j.get("series").map(|s| s.items().len()), Some(3));
    assert!(!body.contains("\"points\""));

    // Bad window is a 400, not a panic.
    let (status, _) = http_get(addr, "/timeseries?window=nope", TIMEOUT).expect("bad window");
    assert_eq!(status, 400);

    server.shutdown();
}

#[test]
fn disabled_ring_reports_off_over_http() {
    let obs = Arc::new(Obs::new(0));
    obs.metrics.counter("c").add(1);
    let server = TelemetryServer::start(obs, &TelemetryConfig::default()).expect("binds");
    let (status, body) = http_get(server.local_addr(), "/timeseries", TIMEOUT).expect("get");
    assert_eq!(status, 200);
    let j = Json::parse(&body).expect("JSON");
    assert_eq!(j.get("enabled").and_then(Json::as_bool), Some(false));
    assert_eq!(j.get("series").map(|s| s.items().len()), Some(0));
    server.shutdown();
}
