//! The replication plane: serving checkpoint and WAL artifacts over
//! the telemetry listener, and fetching them back from a standby.
//!
//! The server side is transport-only: anything implementing
//! [`ReplicaSource`] (in practice `psm-fault`'s `ReplicationStore`) can
//! be attached to a [`crate::TelemetryServer`] via
//! [`crate::TelemetryServer::start_with_replication`], which adds three
//! endpoints to the plane:
//!
//! | Endpoint                      | Serves                                    |
//! |-------------------------------|-------------------------------------------|
//! | `/replicate/manifest`         | JSON: primary cycle, checkpoint chain, WAL segment list |
//! | `/replicate/checkpoint/{id}`  | One checkpoint artifact (`PSMC` full or `PSMD` delta), binary |
//! | `/replicate/wal/{seg}`        | One CRC-framed WAL segment (`PSML` v2), binary |
//!
//! The client side is [`HttpReplicaSource`]: the same trait implemented
//! over [`crate::client::http_get_bytes`], so a standby's pull loop is
//! written once and runs identically against an in-process store (unit
//! tests) or a live primary across the wire (the failover smoke job).

use std::net::SocketAddr;
use std::time::Duration;

use crate::client::http_get_bytes;
use crate::http::{Request, Response};

/// A source of replication artifacts. Implementations must be
/// internally synchronized: the telemetry server calls from its worker
/// threads while the primary keeps publishing.
pub trait ReplicaSource: Send + Sync {
    /// The JSON manifest of available artifacts, or `None` while the
    /// primary has not published anything yet.
    fn manifest(&self) -> Option<String>;
    /// Serialized checkpoint artifact `id` (a `PSMC` full snapshot or
    /// `PSMD` delta, as listed in the manifest).
    fn checkpoint(&self, id: u64) -> Option<Vec<u8>>;
    /// Serialized WAL segment `seq` (`PSML` v2, CRC-framed).
    fn wal_segment(&self, seq: u64) -> Option<Vec<u8>>;
}

/// Routes `/replicate/*` requests against a source. Returns `None`
/// when the path is not a replication path (the caller falls through
/// to its own routing).
pub fn route_replication(source: &dyn ReplicaSource, req: &Request) -> Option<Response> {
    let rest = req.path.strip_prefix("/replicate/")?;
    Some(match rest {
        "manifest" => match source.manifest() {
            Some(json) => Response::json(json),
            None => Response::error(503, "replication source has no state yet"),
        },
        _ => {
            let (kind, raw_id) = rest.split_once('/')?;
            let Ok(id) = raw_id.parse::<u64>() else {
                return Some(Response::error(400, "artifact id must be an integer"));
            };
            let artifact = match kind {
                "checkpoint" => source.checkpoint(id),
                "wal" => source.wal_segment(id),
                _ => return None,
            };
            match artifact {
                Some(bytes) => Response::binary(bytes),
                None => Response::error(404, "unknown artifact"),
            }
        }
    })
}

/// [`ReplicaSource`] over the wire: each call issues one GET against a
/// primary's telemetry listener. Transport errors and non-200 statuses
/// all collapse to `None` — a pull-based standby just retries on its
/// next poll.
#[derive(Debug, Clone)]
pub struct HttpReplicaSource {
    addr: SocketAddr,
    timeout: Duration,
}

impl HttpReplicaSource {
    /// A source reading from the telemetry listener at `addr`.
    pub fn new(addr: SocketAddr, timeout: Duration) -> Self {
        HttpReplicaSource { addr, timeout }
    }

    fn get(&self, path: &str) -> Option<Vec<u8>> {
        match http_get_bytes(self.addr, path, self.timeout) {
            Ok((200, body)) => Some(body),
            _ => None,
        }
    }
}

impl ReplicaSource for HttpReplicaSource {
    fn manifest(&self) -> Option<String> {
        self.get("/replicate/manifest")
            .map(|b| String::from_utf8_lossy(&b).into_owned())
    }

    fn checkpoint(&self, id: u64) -> Option<Vec<u8>> {
        self.get(&format!("/replicate/checkpoint/{id}"))
    }

    fn wal_segment(&self, seq: u64) -> Option<Vec<u8>> {
        self.get(&format!("/replicate/wal/{seq}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakeSource;

    impl ReplicaSource for FakeSource {
        fn manifest(&self) -> Option<String> {
            Some("{\"primary_cycle\":3}".to_string())
        }
        fn checkpoint(&self, id: u64) -> Option<Vec<u8>> {
            (id == 0).then(|| vec![0xDE, 0xAD])
        }
        fn wal_segment(&self, seq: u64) -> Option<Vec<u8>> {
            (seq == 1).then(|| vec![0xBE, 0xEF, 0x00])
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            query: Vec::new(),
        }
    }

    #[test]
    fn replication_routes() {
        let s = FakeSource;
        let resp = route_replication(&s, &get("/replicate/manifest")).unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("primary_cycle"));

        let resp = route_replication(&s, &get("/replicate/checkpoint/0")).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.raw.as_deref(), Some(&[0xDE, 0xAD][..]));
        assert_eq!(resp.content_type, "application/octet-stream");

        let resp = route_replication(&s, &get("/replicate/wal/1")).unwrap();
        assert_eq!(resp.body_bytes(), &[0xBE, 0xEF, 0x00]);

        assert_eq!(
            route_replication(&s, &get("/replicate/checkpoint/9"))
                .unwrap()
                .status,
            404
        );
        assert_eq!(
            route_replication(&s, &get("/replicate/wal/nope"))
                .unwrap()
                .status,
            400
        );
        assert!(route_replication(&s, &get("/metrics")).is_none());
        assert!(route_replication(&s, &get("/replicate/other/1")).is_none());
    }

    #[test]
    fn empty_source_is_503() {
        struct Empty;
        impl ReplicaSource for Empty {
            fn manifest(&self) -> Option<String> {
                None
            }
            fn checkpoint(&self, _: u64) -> Option<Vec<u8>> {
                None
            }
            fn wal_segment(&self, _: u64) -> Option<Vec<u8>> {
                None
            }
        }
        let resp = route_replication(&Empty, &get("/replicate/manifest")).unwrap();
        assert_eq!(resp.status, 503);
    }
}
