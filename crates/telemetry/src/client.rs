//! A minimal HTTP client and JSON reader, for `psmtop` and the
//! end-to-end tests. Zero-dependency like the rest of the workspace:
//! `psm-obs`'s JSON support is emission-only, so the *parsing* side
//! lives here.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Issues `GET path` against `addr` and returns `(status, body)`.
///
/// One request per connection (the server sends `Connection: close`).
///
/// # Errors
///
/// Propagates connect/read/write failures and malformed status lines as
/// [`std::io::Error`].
pub fn http_get(addr: SocketAddr, path: &str, timeout: Duration) -> std::io::Result<(u16, String)> {
    let (status, body) = http_get_bytes(addr, path, timeout)?;
    Ok((status, String::from_utf8_lossy(&body).into_owned()))
}

/// Like [`http_get`], but returns the body as raw bytes — required for
/// the binary `/replicate/checkpoint/{id}` and `/replicate/wal/{seg}`
/// artifacts, which are not UTF-8.
///
/// # Errors
///
/// Propagates connect/read/write failures and malformed status lines as
/// [`std::io::Error`].
pub fn http_get_bytes(
    addr: SocketAddr,
    path: &str,
    timeout: Duration,
) -> std::io::Result<(u16, Vec<u8>)> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
        .unwrap_or(raw.len());
    let head = String::from_utf8_lossy(&raw[..head_end]);
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, raw[head_end..].to_vec()))
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses `src`, returning `None` on any syntax error or trailing
    /// garbage.
    pub fn parse(src: &str) -> Option<Json> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos == p.bytes.len() {
            Some(v)
        } else {
            None
        }
    }

    /// Member `key` of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element `i` of an array.
    pub fn idx(&self, i: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(i),
            _ => None,
        }
    }

    /// The elements of an array (empty for non-arrays).
    pub fn items(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            _ => &[],
        }
    }

    /// The members of an object (empty for non-objects).
    pub fn members(&self) -> &[(String, Json)] {
        match self {
            Json::Obj(members) => members,
            _ => &[],
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value truncated to `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|f| f.max(0.0) as u64)
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> Option<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Some(())
        } else {
            None
        }
    }

    fn value(&mut self) -> Option<Json> {
        self.skip_ws();
        match self.peek()? {
            b'n' => self.eat("null").map(|()| Json::Null),
            b't' => self.eat("true").map(|()| Json::Bool(true)),
            b'f' => self.eat("false").map(|()| Json::Bool(false)),
            b'"' => self.string().map(Json::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Option<String> {
        if self.bump()? != b'"' {
            return None;
        }
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Some(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            code = code * 16 + (self.bump()? as char).to_digit(16)?;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return None,
                },
                b => {
                    // Re-assemble UTF-8 sequences byte-wise.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    if b >= 0x80 {
                        while self.peek().is_some_and(|n| (0x80..0xC0).contains(&n)) {
                            self.pos += 1;
                            end = self.pos;
                        }
                    }
                    out.push_str(&String::from_utf8_lossy(&self.bytes[start..end]));
                }
            }
        }
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse::<f64>()
            .ok()
            .map(Json::Num)
    }

    fn array(&mut self) -> Option<Json> {
        self.bump()?; // [
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Some(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => {}
                b']' => return Some(Json::Arr(items)),
                _ => return None,
            }
        }
    }

    fn object(&mut self) -> Option<Json> {
        self.bump()?; // {
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Some(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.bump()? != b':' {
                return None;
            }
            members.push((key, self.value()?));
            self.skip_ws();
            match self.bump()? {
                b',' => {}
                b'}' => return Some(Json::Obj(members)),
                _ => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_values() {
        let j = Json::parse(r#"{"a":[1,2.5,-3],"b":{"c":"x\"y"},"d":true,"e":null}"#).unwrap();
        assert_eq!(j.get("a").unwrap().idx(1).unwrap().as_f64(), Some(2.5));
        assert_eq!(j.get("a").unwrap().idx(2).unwrap().as_f64(), Some(-3.0));
        assert_eq!(j.get("b").unwrap().get("c").unwrap().as_str(), Some("x\"y"));
        assert_eq!(j.get("d").unwrap().as_bool(), Some(true));
        assert_eq!(j.get("e"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_none());
        assert!(Json::parse("[1,]").is_none());
        assert!(Json::parse("12 34").is_none());
        assert!(Json::parse("").is_none());
    }

    #[test]
    fn roundtrips_snapshot_json() {
        let obs = psm_obs::Obs::new(0);
        obs.metrics.counter("a.b").add(7);
        obs.metrics.histogram("h").record(100);
        let j = Json::parse(&obs.metrics.snapshot().to_json()).unwrap();
        assert_eq!(
            j.get("counters").unwrap().get("a.b").unwrap().as_u64(),
            Some(7)
        );
        assert_eq!(
            j.get("histograms")
                .unwrap()
                .get("h")
                .unwrap()
                .get("count")
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }
}
