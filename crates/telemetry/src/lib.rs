//! `psm-telemetry` — the live telemetry plane, with **zero external
//! dependencies**.
//!
//! PR 1's `psm-obs` explains a run *after the fact* (Chrome traces,
//! JSONL events). This crate makes the same registry observable
//! **while the engine runs**, which is what the ROADMAP's
//! production-scale north star requires: a scrape endpoint, a health
//! endpoint, and live "why did rule X fire" answers without stopping
//! the matcher.
//!
//! | Endpoint    | Serves                                               |
//! |-------------|------------------------------------------------------|
//! | `/metrics`  | Prometheus text exposition of the registry snapshot (plus `profile.node.*` families when the profiler is on) |
//! | `/healthz`  | Engine + supervisor state (degradation tier, last-cycle deadline miss, recoveries) |
//! | `/snapshot` | Full JSON [`psm_obs::MetricsSnapshot`] + recent event ring + flight-ring status + profile table |
//! | `/explain`  | Flight-recorder queries: `?rule=R&instance=N` or `?cycle=N` |
//! | `/profile`  | Per-node join profile (JSON, hottest first): activations, pairs compared, measured selectivity, latency summary |
//! | `/interference` | Parallel-firing compatibility summary (rules, conflicting pairs, density) published by `psm-analyze`, plus live write-set sanitizer counters |
//! | `/timeseries`   | Metric time-series from the [`psm_obs::HistoryRing`]: `?metric=M&window=N` serves delta-decoded windows of a metric or labeled family, no query serves the series index |
//! | `/replicate/*`  | Replication artifacts (manifest, checkpoints, WAL segments) when a [`replicate::ReplicaSource`] is attached — see [`TelemetryServer::start_with_replication`] |
//!
//! The whole plane is optional: don't start a [`TelemetryServer`] and
//! no listener thread exists; build the [`psm_obs::Obs`] without flight
//! capacity and provenance recording is a single relaxed atomic load
//! per would-be record. Likewise the per-node profiler: without
//! profile capacity, `/profile` reports an empty table and no
//! `profile.node.*` family reaches `/metrics`. The profile families
//! are projected from the profiler at scrape time — nothing is
//! formatted or written into the registry on the matcher's hot path.

pub mod client;
pub mod http;
pub mod prom;
pub mod replicate;

use std::io;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use psm_obs::{MetricsSnapshot, Obs};

use http::{Request, Response};

/// How the listener is bound and provisioned.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Bind address; `127.0.0.1:0` picks an ephemeral port.
    pub addr: String,
    /// Handler threads (connections beyond `2 × workers` queued get an
    /// immediate 503).
    pub workers: usize,
    /// Per-connection read/write timeout.
    pub timeout: Duration,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            timeout: Duration::from_secs(5),
        }
    }
}

/// The running telemetry plane: an [`http::HttpServer`] routing into a
/// shared [`Obs`] handle.
#[derive(Debug)]
pub struct TelemetryServer {
    server: http::HttpServer,
}

impl TelemetryServer {
    /// Binds the listener and starts serving `obs`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (port in use, bad address).
    pub fn start(obs: Arc<Obs>, config: &TelemetryConfig) -> io::Result<TelemetryServer> {
        let handler: Arc<dyn Fn(&Request) -> Response + Send + Sync> =
            Arc::new(move |req| route(&obs, req));
        let server = http::HttpServer::bind(&config.addr, config.workers, config.timeout, handler)?;
        Ok(TelemetryServer { server })
    }

    /// Like [`TelemetryServer::start`], but also serves the
    /// `/replicate/*` endpoints from `source` so a warm standby can
    /// pull checkpoint and WAL artifacts off the same listener.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (port in use, bad address).
    pub fn start_with_replication(
        obs: Arc<Obs>,
        config: &TelemetryConfig,
        source: Arc<dyn replicate::ReplicaSource>,
    ) -> io::Result<TelemetryServer> {
        let handler: Arc<dyn Fn(&Request) -> Response + Send + Sync> =
            Arc::new(move |req| route_full(&obs, Some(source.as_ref()), req));
        let server = http::HttpServer::bind(&config.addr, config.workers, config.timeout, handler)?;
        Ok(TelemetryServer { server })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// Stops the listener and joins all serving threads.
    pub fn shutdown(self) {
        self.server.shutdown();
    }
}

/// Routes one request against `obs`. Public (and pure) so tests and
/// tools can exercise the endpoints without sockets. Equivalent to
/// [`route_full`] without a replication source.
pub fn route(obs: &Obs, req: &Request) -> Response {
    route_full(obs, None, req)
}

/// Routes one request against `obs`, optionally serving `/replicate/*`
/// from `source`.
pub fn route_full(
    obs: &Obs,
    source: Option<&dyn replicate::ReplicaSource>,
    req: &Request,
) -> Response {
    if req.method != "GET" {
        return Response::error(405, "only GET is supported");
    }
    if let Some(source) = source {
        if let Some(resp) = replicate::route_replication(source, req) {
            return resp;
        }
    }
    match req.path.as_str() {
        "/metrics" => {
            let mut snap = obs.metrics.snapshot();
            if obs.profile.enabled() {
                snap.merge(&profile_families(&obs.profile.snapshot()));
            }
            Response::exposition(prom::render(&snap))
        }
        "/healthz" => Response::json(healthz_json(&obs.metrics.snapshot())),
        "/snapshot" => Response::json(snapshot_json(obs)),
        "/explain" => explain(obs, req),
        "/profile" => Response::json(obs.profile.snapshot().to_json()),
        "/interference" => Response::json(interference_json(&obs.metrics.snapshot())),
        "/timeseries" => timeseries(obs, req),
        "/" => Response {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body: "psm-telemetry: /metrics /healthz /snapshot /explain /profile \
                   /interference /timeseries /replicate/manifest \
                   /replicate/checkpoint/{id} /replicate/wal/{seg}\n"
                .to_string(),
            raw: None,
        },
        _ => Response::error(404, "unknown path"),
    }
}

/// Projects a profile snapshot into `profile.node.*{node="K",kind="join"}`
/// metric families, using the registry's embedded-label name
/// convention so [`prom::render`] groups and escapes them like any
/// other family. Called at scrape time only.
pub fn profile_families(snap: &psm_obs::ProfileSnapshot) -> MetricsSnapshot {
    let mut out = MetricsSnapshot::default();
    for r in &snap.rows {
        let l = format!("{{node=\"{}\",kind=\"{}\"}}", r.node, r.kind);
        out.counters
            .insert(format!("profile.node.left_activations{l}"), r.left);
        out.counters
            .insert(format!("profile.node.right_activations{l}"), r.right);
        out.counters
            .insert(format!("profile.node.tokens_in{l}"), r.tokens_in);
        out.counters
            .insert(format!("profile.node.tokens_out{l}"), r.tokens_out);
        out.counters
            .insert(format!("profile.node.pairs_compared{l}"), r.pairs);
        // Gauges are integral; selectivity is exported in parts per
        // million.
        out.gauges.insert(
            format!("profile.node.selectivity_ppm{l}"),
            (r.selectivity * 1e6).round() as i64,
        );
        if r.latency.count > 0 {
            out.histograms
                .insert(format!("profile.node.latency_ns{l}"), r.latency.clone());
        }
    }
    out
}

/// `/timeseries` — the metric time-series endpoint over
/// [`psm_obs::HistoryRing`].
///
/// * `/timeseries` — index of every tracked series (name, kind,
///   retained points) plus ring status.
/// * `/timeseries?metric=M[&window=N]` — the last `N` windows (all
///   retained when omitted or 0) of every series whose name equals `M`
///   or belongs to the labeled family `M{…}`; `M` may be a
///   comma-separated list.
///
/// Always 200: a capacity-0 ring answers `{"enabled":false,…}` so
/// pollers can distinguish "history off" from "no data yet".
fn timeseries(obs: &Obs, req: &Request) -> Response {
    let window = match req.param("window") {
        None => 0usize,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) => n,
            Err(_) => return Response::error(400, "window must be an integer"),
        },
    };
    let h = &obs.history;
    let head = format!(
        "{{\"enabled\":{},\"capacity\":{},\"samples\":{},\"interval_ms\":{}",
        h.enabled(),
        h.capacity(),
        h.samples(),
        h.interval_ms(),
    );
    match req.param("metric") {
        None => {
            let mut body = head;
            body.push_str(",\"series\":[");
            for (i, (name, kind, len)) in h.index().iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str("{\"name\":");
                psm_obs::json::push_escaped(&mut body, name);
                body.push_str(&format!(",\"kind\":\"{}\",\"len\":{len}}}", kind.label()));
            }
            body.push_str("]}");
            Response::json(body)
        }
        Some(metric) => {
            let mut body = head;
            body.push_str(&format!(",\"window\":{window},\"series\":["));
            for (i, s) in h.series_matching(metric, window).iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str(&s.to_json());
            }
            body.push_str("]}");
            Response::json(body)
        }
    }
}

/// Health summary derived purely from the metrics snapshot, so the
/// server needs nothing beyond the shared `Obs` handle. Tier numbering
/// follows `psm-fault`: 0 = parallel, 1 = sequential, 2 = naive,
/// 3 = promoted (a standby that took over after a primary kill); a run
/// without a supervisor has no `fault.tier` gauge and reports
/// `"unsupervised"`.
pub fn healthz_json(snap: &MetricsSnapshot) -> String {
    let tier = snap.gauges.get("fault.tier").copied();
    let tier_name = match tier {
        None => "unsupervised",
        Some(0) => "parallel",
        Some(1) => "sequential",
        Some(2) => "naive",
        Some(3) => "promoted",
        Some(_) => "unknown",
    };
    let last_miss = snap
        .gauges
        .get("fault.last_cycle_deadline_miss")
        .copied()
        .unwrap_or(0);
    let counter = |k: &str| snap.counters.get(k).copied().unwrap_or(0);
    let degraded = tier.unwrap_or(0) > 0 || last_miss != 0;
    // Replication state: the `replica.*` gauges a pulling standby
    // publishes, plus the promotions counter. `present` distinguishes
    // "no standby attached" from "standby fully caught up" — a
    // promoted or lagging standby is visible here without scraping
    // `/metrics`.
    let rep_gauge = |k: &str| snap.gauges.get(k).copied();
    let replicating = ["lag", "applied_cycle", "polls", "segments_fetched"]
        .iter()
        .any(|g| rep_gauge(&format!("replica.{g}")).is_some())
        || snap.counters.contains_key("replica.promotions");
    let opt = |v: Option<i64>| v.map_or("null".to_string(), |x| x.to_string());
    let replication = format!(
        concat!(
            "{{\"present\":{},\"lag\":{},\"applied_cycle\":{},",
            "\"segments_fetched\":{},\"rebases\":{},\"promotions\":{}}}"
        ),
        replicating,
        opt(rep_gauge("replica.lag")),
        opt(rep_gauge("replica.applied_cycle")),
        opt(rep_gauge("replica.segments_fetched")),
        opt(rep_gauge("replica.rebases")),
        counter("replica.promotions"),
    );
    format!(
        concat!(
            "{{\"status\":\"{}\",\"tier\":{},\"tier_name\":\"{}\",",
            "\"last_cycle_deadline_miss\":{},\"deadline_misses\":{},",
            "\"recoveries\":{},\"fallbacks\":{},\"checkpoints\":{},",
            "\"engine_faults\":{},\"firings\":{},\"replication\":{}}}"
        ),
        if degraded { "degraded" } else { "ok" },
        match tier {
            Some(t) => t.to_string(),
            None => "null".to_string(),
        },
        tier_name,
        last_miss,
        counter("fault.deadline_misses"),
        counter("fault.recoveries"),
        counter("fault.fallbacks"),
        counter("fault.checkpoints"),
        counter("fault.engine"),
        counter("interp.firings"),
        replication,
    )
}

/// Interference/act-phase summary derived purely from the metrics
/// snapshot: the `interference.*` gauges that
/// `psm_analyze::InterferenceAnalysis::publish` sets (density is
/// exported in parts per million and converted back here) and the
/// `sanitizer.*` counters the runtime write-set sanitizer maintains. A
/// run that never published reports `"analyzed":false` with null
/// fields, so dashboards can distinguish "no analysis" from "fully
/// compatible".
pub fn interference_json(snap: &MetricsSnapshot) -> String {
    let gauge = |k: &str| snap.gauges.get(k).copied();
    let counter = |k: &str| snap.counters.get(k).copied().unwrap_or(0);
    let rules = gauge("interference.rules");
    let pairs = gauge("interference.conflicting_pairs");
    let density = gauge("interference.density_ppm").map(|ppm| ppm as f64 / 1e6);
    let opt = |v: Option<i64>| v.map_or("null".to_string(), |x| x.to_string());
    format!(
        concat!(
            "{{\"analyzed\":{},\"rules\":{},\"conflicting_pairs\":{},",
            "\"density\":{},\"sanitizer\":{{\"checks\":{},\"violations\":{},",
            "\"firings\":{}}}}}"
        ),
        rules.is_some(),
        opt(rules),
        opt(pairs),
        density.map_or("null".to_string(), |d| format!("{d:.6}")),
        counter("sanitizer.checks"),
        counter("sanitizer.violations"),
        counter("sanitizer.firings"),
    )
}

/// `/snapshot`: metrics + buffered events (not drained) + flight-ring
/// status.
fn snapshot_json(obs: &Obs) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str("{\"metrics\":");
    out.push_str(&obs.metrics.snapshot().to_json());
    out.push_str(",\"events\":[");
    for (i, line) in obs.events.to_jsonl().lines().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(line);
    }
    out.push_str("],\"flight\":{\"capacity\":");
    out.push_str(&obs.flight.capacity().to_string());
    out.push_str(",\"len\":");
    out.push_str(&obs.flight.len().to_string());
    out.push_str(",\"dropped\":");
    out.push_str(&obs.flight.dropped().to_string());
    out.push_str(",\"cycle\":");
    out.push_str(&obs.flight.cycle().to_string());
    out.push_str(",\"max_cycles\":");
    out.push_str(&obs.flight.max_cycles().to_string());
    out.push_str(",\"retained_cycles\":");
    out.push_str(&obs.flight.retained_cycles().to_string());
    out.push_str(",\"evicted_cycles\":");
    out.push_str(&obs.flight.evicted_cycles().to_string());
    out.push_str("},\"profile\":");
    out.push_str(&obs.profile.snapshot().to_json());
    out.push_str(",\"history\":");
    out.push_str(&obs.history.summary_json());
    out.push('}');
    out
}

/// `{"node":"kind", ...}` for every profiled node, in node-id order —
/// spliced into `/explain` responses so causal traces and profiles use
/// the same node naming.
fn node_kinds_json(obs: &Obs) -> String {
    let mut rows = obs.profile.snapshot().rows;
    rows.sort_by_key(|r| r.node);
    let mut out = String::from("{");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&r.node.to_string());
        out.push_str("\":\"");
        out.push_str(r.kind);
        out.push('"');
    }
    out.push('}');
    out
}

/// Appends `"node_kinds":{...}` to a JSON object body.
fn with_node_kinds(mut body: String, obs: &Obs) -> String {
    debug_assert!(body.ends_with('}'));
    body.truncate(body.len() - 1);
    body.push_str(",\"node_kinds\":");
    body.push_str(&node_kinds_json(obs));
    body.push('}');
    body
}

/// `/explain?rule=R&instance=N` (instance defaults to 0) or
/// `/explain?cycle=N`.
fn explain(obs: &Obs, req: &Request) -> Response {
    if let Some(cycle) = req.param("cycle") {
        let Ok(n) = cycle.parse::<u64>() else {
            return Response::error(400, "cycle must be an integer");
        };
        let records = obs.flight.explain_cycle(n);
        let mut body = format!("{{\"cycle\":{n},\"records\":[");
        for (i, r) in records.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&r.to_json());
        }
        body.push_str("]}");
        return Response::json(with_node_kinds(body, obs));
    }
    if let Some(rule) = req.param("rule") {
        let instance = match req.param("instance") {
            None => 0,
            Some(raw) => match raw.parse::<usize>() {
                Ok(n) => n,
                Err(_) => return Response::error(400, "instance must be an integer"),
            },
        };
        return Response::json(with_node_kinds(
            obs.flight.explain_firing(rule, instance).to_json(),
            obs,
        ));
    }
    Response::error(400, "expected ?rule=NAME[&instance=N] or ?cycle=N")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(path: &str, query: &[(&str, &str)]) -> Request {
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            query: query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    #[test]
    fn routes_cover_endpoints() {
        let obs = Obs::with_flight(16, 16);
        obs.metrics.counter("interp.firings").add(3);
        obs.metrics.gauge("fault.tier").set(1);
        assert_eq!(route(&obs, &get("/metrics", &[])).status, 200);
        let health = route(&obs, &get("/healthz", &[]));
        assert_eq!(health.status, 200);
        assert!(health.body.contains("\"tier_name\":\"sequential\""));
        assert!(health.body.contains("\"status\":\"degraded\""));
        assert_eq!(route(&obs, &get("/snapshot", &[])).status, 200);
        assert_eq!(route(&obs, &get("/interference", &[])).status, 200);
        assert!(route(&obs, &get("/", &[])).body.contains("/interference"));
        assert_eq!(route(&obs, &get("/nope", &[])).status, 404);
        assert_eq!(route(&obs, &get("/explain", &[])).status, 400);
        assert_eq!(route(&obs, &get("/explain", &[("cycle", "0")])).status, 200);
        let mut bad = get("/metrics", &[]);
        bad.method = "POST".to_string();
        assert_eq!(route(&obs, &bad).status, 405);
    }

    #[test]
    fn healthz_unsupervised_is_ok() {
        let snap = MetricsSnapshot::default();
        let body = healthz_json(&snap);
        assert!(body.contains("\"status\":\"ok\""));
        assert!(body.contains("\"tier\":null"));
        assert!(body.contains("\"tier_name\":\"unsupervised\""));
        assert!(client::Json::parse(&body).is_some(), "healthz must be JSON");
    }

    #[test]
    fn healthz_reports_replication_state() {
        use client::Json;
        // No standby attached: the block is present but marked absent.
        let body = healthz_json(&MetricsSnapshot::default());
        let j = client::Json::parse(&body).expect("healthz is JSON");
        let rep = j.get("replication").expect("replication block");
        assert_eq!(rep.get("present").and_then(Json::as_bool), Some(false));
        assert_eq!(rep.get("lag"), Some(&Json::Null));

        // A lagging standby and a promotion are visible without
        // scraping /metrics.
        let mut snap = MetricsSnapshot::default();
        snap.gauges.insert("replica.lag".into(), 7);
        snap.gauges.insert("replica.applied_cycle".into(), 41);
        snap.gauges.insert("replica.segments_fetched".into(), 3);
        snap.gauges.insert("replica.rebases".into(), 1);
        snap.counters.insert("replica.promotions".into(), 1);
        snap.gauges.insert("fault.tier".into(), 3);
        let body = healthz_json(&snap);
        let j = client::Json::parse(&body).expect("healthz is JSON");
        assert_eq!(
            j.get("tier_name").and_then(Json::as_str),
            Some("promoted"),
            "the Tier::Promoted rung reaches health"
        );
        assert_eq!(j.get("status").and_then(Json::as_str), Some("degraded"));
        let rep = j.get("replication").unwrap();
        assert_eq!(rep.get("present").and_then(Json::as_bool), Some(true));
        assert_eq!(rep.get("lag").and_then(Json::as_u64), Some(7));
        assert_eq!(rep.get("applied_cycle").and_then(Json::as_u64), Some(41));
        assert_eq!(rep.get("promotions").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn timeseries_endpoint_serves_index_and_series() {
        use client::Json;
        // History off: 200 with enabled:false, never an error.
        let off = Obs::with_flight(8, 8);
        let resp = route(&off, &get("/timeseries", &[]));
        assert_eq!(resp.status, 200);
        let j = Json::parse(&resp.body).expect("timeseries is JSON");
        assert_eq!(j.get("enabled").and_then(Json::as_bool), Some(false));
        assert!(j.get("series").unwrap().items().is_empty());

        // With a sampled ring: index lists series, metric query decodes
        // deltas, families group by prefix, windows trim.
        let on = Obs::with_history(8, 8, 0, 16);
        let c = on.metrics.counter("interp.firings");
        let w0 = on.metrics.counter("engine.worker.tasks{worker=\"0\"}");
        let w1 = on.metrics.counter("engine.worker.tasks{worker=\"1\"}");
        c.add(5);
        w0.add(2);
        w1.add(3);
        on.history.sample_at(100, &on.metrics);
        c.add(1);
        on.history.sample_at(200, &on.metrics);

        let j = Json::parse(&route(&on, &get("/timeseries", &[])).body).unwrap();
        assert_eq!(j.get("enabled").and_then(Json::as_bool), Some(true));
        assert_eq!(j.get("samples").and_then(Json::as_u64), Some(2));
        assert_eq!(j.get("series").unwrap().items().len(), 3);

        let j = Json::parse(&route(&on, &get("/timeseries", &[("metric", "interp.firings")])).body)
            .unwrap();
        let s = &j.get("series").unwrap().items()[0];
        assert_eq!(s.get("kind").and_then(Json::as_str), Some("counter"));
        let pts = s.get("points").unwrap().items();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].idx(1).and_then(Json::as_u64), Some(5));
        assert_eq!(pts[1].idx(1).and_then(Json::as_u64), Some(1));

        let j = Json::parse(
            &route(
                &on,
                &get(
                    "/timeseries",
                    &[("metric", "engine.worker.tasks"), ("window", "1")],
                ),
            )
            .body,
        )
        .unwrap();
        let family = j.get("series").unwrap().items();
        assert_eq!(family.len(), 2, "family prefix matches both workers");
        for s in family {
            assert_eq!(s.get("points").unwrap().items().len(), 1, "window trims");
        }

        assert_eq!(
            route(&on, &get("/timeseries", &[("window", "x")])).status,
            400
        );
        assert!(route(&on, &get("/", &[])).body.contains("/timeseries"));
    }

    #[test]
    fn profile_endpoint_and_metric_families() {
        // Capacity 0: the endpoint answers but reports nothing, and no
        // profile family leaks into the exposition text.
        let off = Obs::with_flight(16, 16);
        off.metrics.counter("interp.firings").inc();
        let resp = route(&off, &get("/profile", &[]));
        assert_eq!(resp.status, 200);
        let j = client::Json::parse(&resp.body).expect("profile is JSON");
        assert_eq!(j.get("capacity").unwrap().as_u64(), Some(0));
        assert!(j.get("rows").unwrap().items().is_empty());
        let text = route(&off, &get("/metrics", &[])).body;
        assert!(
            !text.contains("profile_node_"),
            "capacity 0 keeps profile families out of /metrics"
        );

        // With capacity and recorded activity, the labeled families
        // appear and the table is sorted hottest-first.
        let on = Obs::with_profile(16, 16, 8);
        on.profile
            .record(1, psm_obs::ProfileKind::Join, true, 100, 25);
        on.profile
            .record(2, psm_obs::ProfileKind::Negative, false, 10, 1);
        let resp = route(&on, &get("/profile", &[]));
        let j = client::Json::parse(&resp.body).expect("profile is JSON");
        let rows = j.get("rows").unwrap().items();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0].get("node").unwrap().as_u64(),
            Some(1),
            "hottest first"
        );
        assert_eq!(rows[0].get("kind").unwrap().as_str(), Some("join"));
        let text = route(&on, &get("/metrics", &[])).body;
        assert!(text.contains("profile_node_pairs_compared{node=\"1\",kind=\"join\"} 100"));
        assert!(text.contains("profile_node_selectivity_ppm{node=\"1\",kind=\"join\"} 250000"));
        assert!(text.contains("profile_node_right_activations{node=\"1\",kind=\"join\"} 1"));
        assert!(text.contains("{node=\"2\",kind=\"neg\"}"));

        // /snapshot carries the same table plus retention status.
        let snap = client::Json::parse(&route(&on, &get("/snapshot", &[])).body).unwrap();
        let p = snap.get("profile").unwrap();
        assert_eq!(p.get("retained").unwrap().as_u64(), Some(2));
        assert_eq!(p.get("overflow").unwrap().as_u64(), Some(0));

        // /explain reports the profiler's node kinds alongside records.
        let ex =
            client::Json::parse(&route(&on, &get("/explain", &[("cycle", "0")])).body).unwrap();
        let kinds = ex.get("node_kinds").unwrap();
        assert_eq!(kinds.get("1").unwrap().as_str(), Some("join"));
        assert_eq!(kinds.get("2").unwrap().as_str(), Some("neg"));
    }

    #[test]
    fn profile_overflow_reported() {
        let obs = Obs::with_profile(16, 0, 2);
        obs.profile
            .record(7, psm_obs::ProfileKind::Join, true, 1, 1);
        let j = client::Json::parse(&route(&obs, &get("/profile", &[])).body).unwrap();
        assert_eq!(j.get("overflow").unwrap().as_u64(), Some(1));
        assert_eq!(j.get("retained").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn interference_endpoint_reports_gauges_and_sanitizer() {
        // Nothing published yet: analyzed=false, null fields, zeroed
        // sanitizer counters — still valid JSON.
        let obs = Obs::with_flight(8, 8);
        let body = route(&obs, &get("/interference", &[])).body;
        assert!(body.contains("\"analyzed\":false"));
        assert!(body.contains("\"rules\":null"));
        assert!(body.contains("\"violations\":0"));
        assert!(client::Json::parse(&body).is_some(), "must be JSON");

        // After a publish + sanitizer activity, the numbers flow through
        // (density round-trips from parts per million).
        obs.metrics.gauge("interference.rules").set(20);
        obs.metrics.gauge("interference.conflicting_pairs").set(3);
        obs.metrics.gauge("interference.density_ppm").set(984_211);
        obs.metrics.counter("sanitizer.checks").add(57);
        obs.metrics.counter("sanitizer.violations").inc();
        obs.metrics.counter("sanitizer.firings").add(12);
        let body = route(&obs, &get("/interference", &[])).body;
        assert!(body.contains("\"analyzed\":true"));
        assert!(body.contains("\"rules\":20"));
        assert!(body.contains("\"conflicting_pairs\":3"));
        assert!(body.contains("\"density\":0.984211"));
        assert!(body.contains("\"checks\":57"));
        assert!(body.contains("\"violations\":1"));
        assert!(body.contains("\"firings\":12"));
    }

    #[test]
    fn snapshot_is_valid_json() {
        let obs = Obs::with_flight(8, 8);
        obs.set_detail(true);
        obs.events.emit("tick", &[("n", 1u64.into())]);
        obs.metrics.counter("c").inc();
        obs.metrics.histogram("h").record(42);
        let body = snapshot_json(&obs);
        let j = client::Json::parse(&body).expect("valid JSON");
        assert_eq!(j.get("events").unwrap().items().len(), 1);
        assert!(j.get("metrics").unwrap().get("counters").is_some());
        assert_eq!(
            j.get("flight").unwrap().get("capacity").unwrap().as_u64(),
            Some(8)
        );
        assert!(
            j.get("flight")
                .unwrap()
                .get("retained_cycles")
                .unwrap()
                .as_u64()
                .is_some(),
            "snapshot reports per-cycle retention"
        );
        assert!(j.get("flight").unwrap().get("evicted_cycles").is_some());
    }
}
