//! Prometheus text exposition format (version 0.0.4) rendering of a
//! [`MetricsSnapshot`].
//!
//! The registry's label convention: a metric name may carry a literal
//! trailing `{k="v",...}` block (e.g. `engine.worker.tasks{worker="0"}`).
//! This module splits that block off, sanitizes the base name to the
//! `[a-zA-Z_:][a-zA-Z0-9_:]*` charset, re-escapes label values, and
//! groups samples into families so each family gets exactly one
//! `# TYPE` line. Histograms expand into the standard
//! `_bucket`/`_sum`/`_count` triplet with cumulative `le` buckets and a
//! closing `+Inf`.

use psm_obs::{Histogram, HistogramSnapshot, MetricsSnapshot, HIST_BUCKETS};

/// Maps a registry name to a legal Prometheus metric name: every
/// character outside `[a-zA-Z0-9_:]` becomes `_`, and a leading digit
/// gets a `_` prefix.
pub fn sanitize_name(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for (i, c) in raw.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
pub fn escape_label_value(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Splits `engine.tasks{worker="0"}` into the base name and its parsed
/// `(key, value)` labels. Names without a trailing block parse to an
/// empty label list; a malformed block is kept as part of the name (and
/// later sanitized away).
pub fn split_labels(raw: &str) -> (&str, Vec<(String, String)>) {
    let Some(open) = raw.find('{') else {
        return (raw, Vec::new());
    };
    if !raw.ends_with('}') {
        return (raw, Vec::new());
    }
    let inner = &raw[open + 1..raw.len() - 1];
    let mut labels = Vec::new();
    for pair in inner.split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let Some(eq) = pair.find('=') else {
            return (raw, Vec::new());
        };
        let (k, v) = (pair[..eq].trim(), pair[eq + 1..].trim());
        let v = v
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .unwrap_or(v);
        labels.push((sanitize_name(k), v.to_string()));
    }
    (&raw[..open], labels)
}

/// Renders a label list (plus an optional extra `le` label) as the
/// `{...}` sample suffix; empty labels render as nothing.
fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=\"");
        out.push_str(le);
        out.push('"');
    }
    out.push('}');
    out
}

/// Emits the `# TYPE` header the first time each family appears.
fn type_line(out: &mut String, last: &mut String, family: &str, kind: &str) {
    if last != family {
        out.push_str("# TYPE ");
        out.push_str(family);
        out.push(' ');
        out.push_str(kind);
        out.push('\n');
        last.clear();
        last.push_str(family);
    }
}

fn render_histogram(
    out: &mut String,
    family: &str,
    labels: &[(String, String)],
    h: &HistogramSnapshot,
) {
    let mut cum = 0u64;
    for i in 0..HIST_BUCKETS {
        let c = h.buckets[i];
        if c == 0 {
            continue;
        }
        cum += c;
        let bound = Histogram::bucket_bound(i);
        if bound == u64::MAX {
            // The top bucket is the +Inf bucket emitted below.
            continue;
        }
        out.push_str(family);
        out.push_str("_bucket");
        out.push_str(&label_block(labels, Some(&bound.to_string())));
        out.push(' ');
        out.push_str(&cum.to_string());
        out.push('\n');
    }
    out.push_str(family);
    out.push_str("_bucket");
    out.push_str(&label_block(labels, Some("+Inf")));
    out.push(' ');
    out.push_str(&h.count.to_string());
    out.push('\n');
    out.push_str(family);
    out.push_str("_sum");
    out.push_str(&label_block(labels, None));
    out.push(' ');
    out.push_str(&h.sum.to_string());
    out.push('\n');
    out.push_str(family);
    out.push_str("_count");
    out.push_str(&label_block(labels, None));
    out.push(' ');
    out.push_str(&h.count.to_string());
    out.push('\n');
}

/// Renders the whole snapshot as exposition text. Families appear in
/// name order (the snapshot maps are sorted); counters first, then
/// gauges, then histograms.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(1024);
    let mut last = String::new();
    for (name, value) in &snapshot.counters {
        let (base, labels) = split_labels(name);
        let family = sanitize_name(base);
        type_line(&mut out, &mut last, &family, "counter");
        out.push_str(&family);
        out.push_str(&label_block(&labels, None));
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    for (name, value) in &snapshot.gauges {
        let (base, labels) = split_labels(name);
        let family = sanitize_name(base);
        type_line(&mut out, &mut last, &family, "gauge");
        out.push_str(&family);
        out.push_str(&label_block(&labels, None));
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    for (name, h) in &snapshot.histograms {
        let (base, labels) = split_labels(name);
        let family = sanitize_name(base);
        type_line(&mut out, &mut last, &family, "histogram");
        render_histogram(&mut out, &family, &labels, h);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_name("engine.worker.tasks"), "engine_worker_tasks");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("a:b_c"), "a:b_c");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn splits_and_escapes_labels() {
        let (base, labels) = split_labels("engine.tasks{worker=\"0\"}");
        assert_eq!(base, "engine.tasks");
        assert_eq!(labels, vec![("worker".to_string(), "0".to_string())]);
        let (base, labels) = split_labels("plain.name");
        assert_eq!(base, "plain.name");
        assert!(labels.is_empty());
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
