//! A tiny blocking HTTP/1.1 server on `std::net::TcpListener`.
//!
//! Scope is deliberately minimal — enough to serve scrapes and
//! dashboard polls from inside a benchmark or a production run without
//! any external dependency: GET only, one request per connection
//! (`Connection: close`), bounded worker threads, and read/write
//! timeouts so a stalled scraper cannot wedge a worker.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Longest request head (request line + headers) accepted, bytes.
const MAX_HEAD: usize = 8 * 1024;

/// A parsed request: method, path, and decoded query pairs.
#[derive(Debug, Clone)]
pub struct Request {
    /// HTTP method (`GET`).
    pub method: String,
    /// Path without the query string (`/metrics`).
    pub path: String,
    /// Percent-decoded `key=value` pairs from the query string.
    pub query: Vec<(String, String)>,
}

impl Request {
    /// The first value of query parameter `key`.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A response to serialize back to the client.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Body bytes (textual). Ignored when `raw` is set.
    pub body: String,
    /// Binary body (checkpoint and WAL artifacts); takes precedence
    /// over `body` when present.
    pub raw: Option<Vec<u8>>,
}

impl Response {
    /// 200 with `text/plain; version=0.0.4` (the exposition format).
    pub fn exposition(body: String) -> Self {
        Response {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body,
            raw: None,
        }
    }

    /// 200 with `application/json`.
    pub fn json(body: String) -> Self {
        Response {
            status: 200,
            content_type: "application/json",
            body,
            raw: None,
        }
    }

    /// 200 with `application/octet-stream` and a binary body.
    pub fn binary(bytes: Vec<u8>) -> Self {
        Response {
            status: 200,
            content_type: "application/octet-stream",
            body: String::new(),
            raw: Some(bytes),
        }
    }

    /// An error response with a plain-text body.
    pub fn error(status: u16, msg: &str) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: format!("{msg}\n"),
            raw: None,
        }
    }

    /// The body as bytes, whichever representation carries it.
    pub fn body_bytes(&self) -> &[u8] {
        match &self.raw {
            Some(raw) => raw,
            None => self.body.as_bytes(),
        }
    }
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Error",
    }
}

/// Decodes `%XX` escapes and `+` (space) in a query component.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() => {
                let hex = |b: u8| (b as char).to_digit(16);
                match (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                    (Some(h), Some(l)) => {
                        out.push((h * 16 + l) as u8);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn parse_query(qs: &str) -> Vec<(String, String)> {
    qs.split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// Reads and parses one request head from `stream`.
fn read_request(stream: &mut TcpStream) -> Result<Request, Response> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if buf.len() > MAX_HEAD {
            return Err(Response::error(431, "request head too large"));
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(Response::error(408, "timed out reading request"))
            }
            Err(_) => return Err(Response::error(400, "read error")),
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let line = head.lines().next().unwrap_or("");
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Err(Response::error(400, "malformed request line"));
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target.to_string(), Vec::new()),
    };
    Ok(Request {
        method: method.to_string(),
        path,
        query,
    })
}

fn write_response(stream: &mut TcpStream, resp: &Response) {
    let body = resp.body_bytes();
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        status_text(resp.status),
        resp.content_type,
        body.len()
    );
    // A dead client is the client's problem; ignore write errors.
    let _ = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .and_then(|()| stream.flush());
}

fn handle_connection(
    mut stream: TcpStream,
    timeout: Duration,
    handler: &(dyn Fn(&Request) -> Response + Send + Sync),
) {
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let resp = match read_request(&mut stream) {
        Ok(req) => handler(&req),
        Err(resp) => resp,
    };
    write_response(&mut stream, &resp);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// The listener plus its accept thread and bounded worker pool.
///
/// Dropping the server (or calling [`HttpServer::shutdown`]) stops the
/// accept loop, drains the workers, and joins every thread.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl HttpServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts `workers` handler threads behind a bounded queue. When
    /// every worker is busy and the queue is full, new connections get
    /// an immediate 503 instead of piling up.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(
        addr: &str,
        workers: usize,
        timeout: Duration,
        handler: Arc<dyn Fn(&Request) -> Response + Send + Sync>,
    ) -> io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let workers = workers.max(1);
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = sync_channel::<TcpStream>(workers * 2);
        let rx: Arc<Mutex<Receiver<TcpStream>>> = Arc::new(Mutex::new(rx));

        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let handler = Arc::clone(&handler);
                std::thread::Builder::new()
                    .name(format!("psm-telemetry-{i}"))
                    .spawn(move || loop {
                        let conn = match rx.lock() {
                            Ok(guard) => guard.recv(),
                            Err(_) => break,
                        };
                        match conn {
                            Ok(stream) => handle_connection(stream, timeout, handler.as_ref()),
                            Err(_) => break, // sender gone: shutting down
                        }
                    })
                    .expect("spawn telemetry worker")
            })
            .collect();

        let accept_stop = Arc::clone(&stop);
        let accept = std::thread::Builder::new()
            .name("psm-telemetry-accept".to_string())
            .spawn(move || {
                // `tx` lives in this thread; when the loop ends it drops
                // and every worker's recv() unblocks with Err.
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    match tx.try_send(stream) {
                        Ok(()) => {}
                        Err(TrySendError::Full(mut stream)) => {
                            let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
                            write_response(&mut stream, &Response::error(503, "server busy"));
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
            })
            .expect("spawn telemetry accept loop");

        Ok(HttpServer {
            addr: local,
            stop,
            accept: Some(accept),
            workers: worker_handles,
        })
    }

    /// The bound address (resolves the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains in-flight requests, joins all threads.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop_threads();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("put%2Don"), "put-on");
        assert_eq!(percent_decode("a+b"), "a b");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn query_parsing() {
        let q = parse_query("rule=put-on&instance=2&flag");
        assert_eq!(q[0], ("rule".to_string(), "put-on".to_string()));
        assert_eq!(q[1], ("instance".to_string(), "2".to_string()));
        assert_eq!(q[2], ("flag".to_string(), String::new()));
    }
}
