//! The naive, non-state-saving matcher (§3.1 of the paper).
//!
//! On every working-memory change it recomputes the full set of
//! satisfied instantiations by joining the *entire* working memory
//! against every production, then diffs against the previous set. The
//! work it performs per cycle is proportional to the stable working-
//! memory size `s` — the `C_non-state-saving = s · c3` side of the
//! paper's cost model — whereas Rete's is proportional to the change
//! count `i + d`.
//!
//! Because it derives directly from the AST reference semantics
//! ([`ops5::match_and_bind`]), it doubles as the correctness oracle for
//! every other matcher in this workspace.

use std::collections::HashSet;

use ops5::{
    match_and_bind, Instantiation, MatchDelta, Matcher, Program, Value, WmeId, WorkingMemory,
};

/// Work counters for the naive matcher.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NaiveStats {
    /// Working-memory changes processed.
    pub changes: u64,
    /// Condition-element match attempts (`ce × wme` pairs examined).
    pub ce_match_attempts: u64,
    /// Partial joins extended (tuples examined across CEs).
    pub tuples_examined: u64,
    /// Instantiations produced across all recomputations (most of which
    /// are identical to the previous cycle's — the recomputed state the
    /// paper charges to non-state-saving algorithms).
    pub instantiations_computed: u64,
}

/// The non-state-saving reference matcher.
///
/// # Examples
///
/// ```
/// use ops5::{parse_program, parse_wme, Interpreter};
/// use baselines::NaiveMatcher;
///
/// # fn main() -> Result<(), ops5::Error> {
/// let program = parse_program("(p r (a ^x 1) --> (remove 1))")?;
/// let matcher = NaiveMatcher::new(&program);
/// let mut interp = Interpreter::new(program, matcher);
/// let mut syms = interp.program().symbols.clone();
/// interp.insert(parse_wme("(a ^x 1)", &mut syms)?);
/// assert_eq!(interp.run(10)?, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct NaiveMatcher {
    program: Program,
    /// WMEs this matcher considers live. Within a change batch the
    /// working memory may still hold WMEs that were logically removed;
    /// this set is the matcher's own consistent view.
    live: HashSet<WmeId>,
    current: HashSet<Instantiation>,
    stats: NaiveStats,
}

impl NaiveMatcher {
    /// Builds a naive matcher for `program`.
    pub fn new(program: &Program) -> Self {
        NaiveMatcher {
            program: program.clone(),
            live: HashSet::new(),
            current: HashSet::new(),
            stats: NaiveStats::default(),
        }
    }

    /// Work counters so far.
    pub fn stats(&self) -> NaiveStats {
        self.stats
    }

    /// Recomputes all satisfied instantiations from scratch.
    fn all_instantiations(&mut self, wm: &WorkingMemory) -> HashSet<Instantiation> {
        let mut out = HashSet::new();
        let program = &self.program;
        for p in &program.productions {
            let mut partial: Vec<(Vec<WmeId>, Vec<Option<Value>>)> =
                vec![(Vec::new(), vec![None; p.variables.len()])];
            for ce in &p.ces {
                let mut next = Vec::new();
                for (wmes, bindings) in partial {
                    if ce.negated {
                        let mut blocked = false;
                        for (id, wme, _) in wm.iter() {
                            if !self.live.contains(&id) {
                                continue;
                            }
                            self.stats.ce_match_attempts += 1;
                            let mut local = bindings.clone();
                            if match_and_bind(ce, wme, &mut local) {
                                blocked = true;
                                break;
                            }
                        }
                        if !blocked {
                            next.push((wmes, bindings));
                        }
                    } else {
                        for (id, wme, _) in wm.iter() {
                            if !self.live.contains(&id) {
                                continue;
                            }
                            self.stats.ce_match_attempts += 1;
                            let mut b = bindings.clone();
                            if match_and_bind(ce, wme, &mut b) {
                                self.stats.tuples_examined += 1;
                                let mut w = wmes.clone();
                                w.push(id);
                                next.push((w, b));
                            }
                        }
                    }
                }
                partial = next;
            }
            for (wmes, _) in partial {
                self.stats.instantiations_computed += 1;
                out.insert(Instantiation::new(p.id, wmes));
            }
        }
        out
    }

    fn refresh(&mut self, wm: &WorkingMemory) -> MatchDelta {
        self.stats.changes += 1;
        let next = self.all_instantiations(wm);
        let added = next.difference(&self.current).cloned().collect();
        let removed = self.current.difference(&next).cloned().collect();
        self.current = next;
        MatchDelta { added, removed }
    }

    /// The currently satisfied instantiations (for tests and experiments).
    pub fn satisfied(&self) -> &HashSet<Instantiation> {
        &self.current
    }
}

impl Matcher for NaiveMatcher {
    fn add_wme(&mut self, wm: &WorkingMemory, id: WmeId) -> MatchDelta {
        self.live.insert(id);
        self.refresh(wm)
    }

    fn remove_wme(&mut self, wm: &WorkingMemory, id: WmeId) -> MatchDelta {
        self.live.remove(&id);
        self.refresh(wm)
    }

    fn algorithm_name(&self) -> &'static str {
        "naive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::{parse_program, parse_wme, SymbolTable};

    fn setup(src: &str) -> (NaiveMatcher, WorkingMemory, SymbolTable) {
        let program = parse_program(src).unwrap();
        let m = NaiveMatcher::new(&program);
        let syms = program.symbols.clone();
        (m, WorkingMemory::new(), syms)
    }

    fn add(
        m: &mut NaiveMatcher,
        wm: &mut WorkingMemory,
        syms: &mut SymbolTable,
        lit: &str,
    ) -> (WmeId, MatchDelta) {
        let wme = parse_wme(lit, syms).unwrap();
        let (id, _) = wm.add(wme);
        let d = m.add_wme(wm, id);
        (id, d)
    }

    #[test]
    fn add_remove_single_ce() {
        let (mut m, mut wm, mut syms) = setup("(p r (a ^x 1) --> (remove 1))");
        let (id, d) = add(&mut m, &mut wm, &mut syms, "(a ^x 1)");
        assert_eq!(d.added.len(), 1);
        let d = m.remove_wme(&wm, id);
        wm.remove(id);
        assert_eq!(d.removed.len(), 1);
        assert!(m.satisfied().is_empty());
    }

    #[test]
    fn join_and_negation() {
        let (mut m, mut wm, mut syms) =
            setup("(p r (a ^x <v>) (b ^x <v>) - (veto ^x <v>) --> (remove 1))");
        add(&mut m, &mut wm, &mut syms, "(a ^x 3)");
        let (_b, d) = add(&mut m, &mut wm, &mut syms, "(b ^x 3)");
        assert_eq!(d.added.len(), 1);
        let (veto, d) = add(&mut m, &mut wm, &mut syms, "(veto ^x 3)");
        assert_eq!(d.removed.len(), 1);
        let d = m.remove_wme(&wm, veto);
        wm.remove(veto);
        assert_eq!(d.added.len(), 1);
    }

    #[test]
    fn work_scales_with_wm_size_not_change_count() {
        // The defining property of a non-state-saving matcher: the cost
        // of one change grows with |WM|.
        let (mut m, mut wm, mut syms) = setup("(p r (a ^x <v>) (b ^x <v>) --> (remove 1))");
        for i in 0..20 {
            add(&mut m, &mut wm, &mut syms, &format!("(a ^x {i})"));
        }
        let before = m.stats().ce_match_attempts;
        add(&mut m, &mut wm, &mut syms, "(b ^x 0)");
        let per_change_large = m.stats().ce_match_attempts - before;
        // On a small memory the same change is much cheaper.
        let (mut m2, mut wm2, mut syms2) = setup("(p r (a ^x <v>) (b ^x <v>) --> (remove 1))");
        add(&mut m2, &mut wm2, &mut syms2, "(a ^x 0)");
        let before2 = m2.stats().ce_match_attempts;
        add(&mut m2, &mut wm2, &mut syms2, "(b ^x 0)");
        let per_change_small = m2.stats().ce_match_attempts - before2;
        assert!(
            per_change_large > 5 * per_change_small,
            "{per_change_large} vs {per_change_small}"
        );
    }

    #[test]
    fn duplicate_wmes_are_distinct_matches() {
        let (mut m, mut wm, mut syms) = setup("(p r (a ^x 1) --> (remove 1))");
        let (_, d1) = add(&mut m, &mut wm, &mut syms, "(a ^x 1)");
        let (_, d2) = add(&mut m, &mut wm, &mut syms, "(a ^x 1)");
        assert_eq!(d1.added.len(), 1);
        assert_eq!(d2.added.len(), 1);
        assert_eq!(m.satisfied().len(), 2);
    }
}
