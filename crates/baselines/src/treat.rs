//! The TREAT matcher (Miranker; used on the DADO machine, §7.1).
//!
//! TREAT stores *only* alpha memories — "no state is saved other than
//! working elements that satisfy a single condition element". Cross-CE
//! joins are recomputed on every change, seeded by the changed WME. If
//! any condition element of a production has an empty memory, the
//! production cannot be satisfied and the join is skipped (TREAT's
//! early-exit optimisation).
//!
//! It reuses the Rete compiler's alpha network (constant-test
//! classification and per-CE alpha memories) so the comparison between
//! TREAT and Rete isolates exactly the paper's variable of interest: how
//! much *beta* state is stored.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use ops5::{
    match_and_bind, Error, Instantiation, MatchDelta, Matcher, Production, ProductionId, Program,
    Value, WmeId, WorkingMemory,
};
use rete::Network;

/// Work counters for the TREAT matcher.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreatStats {
    /// Working-memory changes processed.
    pub changes: u64,
    /// Constant (alpha) tests evaluated.
    pub constant_tests: u64,
    /// Seeded join searches started.
    pub seeded_joins: u64,
    /// Candidate WMEs examined during joins (the recomputation cost the
    /// paper charges to TREAT).
    pub candidates_examined: u64,
    /// Full recomputations triggered by retractions that unblock negated
    /// condition elements.
    pub negation_recomputes: u64,
}

/// The TREAT matcher: alpha memories only, joins recomputed per change.
///
/// # Examples
///
/// ```
/// use ops5::{parse_program, parse_wme, Interpreter};
/// use baselines::TreatMatcher;
///
/// # fn main() -> Result<(), ops5::Error> {
/// let program = parse_program("(p r (a ^x <v>) (b ^x <v>) --> (remove 1))")?;
/// let matcher = TreatMatcher::compile(&program)?;
/// let mut interp = Interpreter::new(program, matcher);
/// let mut syms = interp.program().symbols.clone();
/// interp.insert(parse_wme("(a ^x 1)", &mut syms)?);
/// interp.insert(parse_wme("(b ^x 1)", &mut syms)?);
/// assert_eq!(interp.run(10)?, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TreatMatcher {
    program: Program,
    network: Arc<Network>,
    alpha_mems: Vec<Vec<WmeId>>,
    /// The conflict-set image: all currently satisfied instantiations,
    /// per production. TREAT keeps this (it is output state, not match
    /// state) so retractions can delete by containment.
    satisfied: HashMap<ProductionId, HashSet<Instantiation>>,
    stats: TreatStats,
}

impl TreatMatcher {
    /// Compiles `program` (alpha network only is used at run time).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Semantic`] for LHS constructs the compiler
    /// rejects.
    pub fn compile(program: &Program) -> Result<Self, Error> {
        let network = Arc::new(Network::compile(program)?);
        Ok(TreatMatcher {
            program: program.clone(),
            alpha_mems: vec![Vec::new(); network.alpha.len()],
            network,
            satisfied: HashMap::new(),
            stats: TreatStats::default(),
        })
    }

    /// Work counters so far.
    pub fn stats(&self) -> TreatStats {
        self.stats
    }

    /// Total WMEs resident across alpha memories — TREAT's entire saved
    /// state, compared against Rete's alpha *plus* beta state in the
    /// state-spectrum experiments.
    pub fn resident_state(&self) -> usize {
        self.alpha_mems.iter().map(Vec::len).sum()
    }

    /// Candidate WMEs for the CE at `ce_index` of production `p`
    /// (its alpha memory).
    fn candidates(&self, p: ProductionId, ce_index: usize) -> &[WmeId] {
        let alpha = self.network.ce_alpha[p.index()][ce_index];
        &self.alpha_mems[alpha.index()]
    }

    /// Enumerates instantiations of `production` that place `seed` at CE
    /// position `seed_ce` (an index over all CEs). Positions textually
    /// before the seed exclude the seed WME so an instantiation
    /// containing the new WME several times is generated exactly once —
    /// from its first seed position.
    fn seeded_join(
        &mut self,
        wm: &WorkingMemory,
        production: &Production,
        seed_ce: usize,
        seed: WmeId,
    ) -> Vec<Instantiation> {
        self.stats.seeded_joins += 1;
        // TREAT early exit: an empty positive memory anywhere means no
        // instantiation can exist.
        for (idx, ce) in production.ces.iter().enumerate() {
            if !ce.negated && idx != seed_ce && self.candidates(production.id, idx).is_empty() {
                return Vec::new();
            }
        }
        let mut partial: Vec<(Vec<WmeId>, Vec<Option<Value>>)> =
            vec![(Vec::new(), vec![None; production.variables.len()])];
        for (idx, ce) in production.ces.iter().enumerate() {
            let mut next = Vec::new();
            if ce.negated {
                let candidates: Vec<WmeId> = self.candidates(production.id, idx).to_vec();
                for (wmes, bindings) in partial {
                    let mut blocked = false;
                    for &cand in &candidates {
                        self.stats.candidates_examined += 1;
                        let wme = wm.get(cand).expect("live wme in alpha memory");
                        let mut local = bindings.clone();
                        if match_and_bind(ce, wme, &mut local) {
                            blocked = true;
                            break;
                        }
                    }
                    if !blocked {
                        next.push((wmes, bindings));
                    }
                }
            } else {
                let candidates: Vec<WmeId> = if idx == seed_ce {
                    vec![seed]
                } else {
                    self.candidates(production.id, idx)
                        .iter()
                        .copied()
                        .filter(|&c| !(idx < seed_ce && c == seed))
                        .collect()
                };
                for (wmes, bindings) in partial {
                    for &cand in &candidates {
                        self.stats.candidates_examined += 1;
                        let wme = wm.get(cand).expect("live wme in alpha memory");
                        let mut b = bindings.clone();
                        if match_and_bind(ce, wme, &mut b) {
                            let mut w = wmes.clone();
                            w.push(cand);
                            next.push((w, b));
                        }
                    }
                }
            }
            partial = next;
            if partial.is_empty() {
                return Vec::new();
            }
        }
        partial
            .into_iter()
            .map(|(wmes, _)| Instantiation::new(production.id, wmes))
            .collect()
    }

    /// Full (unseeded) recomputation of one production's instantiations,
    /// used when a retraction may unblock negated CEs.
    fn full_join(&mut self, wm: &WorkingMemory, production: &Production) -> Vec<Instantiation> {
        self.stats.negation_recomputes += 1;
        let mut partial: Vec<(Vec<WmeId>, Vec<Option<Value>>)> =
            vec![(Vec::new(), vec![None; production.variables.len()])];
        for (idx, ce) in production.ces.iter().enumerate() {
            let candidates: Vec<WmeId> = self.candidates(production.id, idx).to_vec();
            let mut next = Vec::new();
            for (wmes, bindings) in partial {
                if ce.negated {
                    let mut blocked = false;
                    for &cand in &candidates {
                        self.stats.candidates_examined += 1;
                        let wme = wm.get(cand).expect("live wme");
                        let mut local = bindings.clone();
                        if match_and_bind(ce, wme, &mut local) {
                            blocked = true;
                            break;
                        }
                    }
                    if !blocked {
                        next.push((wmes, bindings));
                    }
                } else {
                    for &cand in &candidates {
                        self.stats.candidates_examined += 1;
                        let wme = wm.get(cand).expect("live wme");
                        let mut b = bindings.clone();
                        if match_and_bind(ce, wme, &mut b) {
                            let mut w = wmes.clone();
                            w.push(cand);
                            next.push((w, b));
                        }
                    }
                }
            }
            partial = next;
            if partial.is_empty() {
                return Vec::new();
            }
        }
        partial
            .into_iter()
            .map(|(wmes, _)| Instantiation::new(production.id, wmes))
            .collect()
    }

    /// Whether `wme` (matching the negated CE at `ce_index`) blocks
    /// `inst`: re-derives the instantiation's bindings and checks
    /// consistency.
    fn blocks(
        &self,
        wm: &WorkingMemory,
        production: &Production,
        inst: &Instantiation,
        ce_index: usize,
        wme_id: WmeId,
    ) -> bool {
        let mut bindings = vec![None; production.variables.len()];
        let mut pos = 0usize;
        for (idx, ce) in production.ces.iter().enumerate() {
            if idx == ce_index {
                break;
            }
            if !ce.negated {
                let wme = wm.get(inst.wmes[pos]).expect("instantiation wme live");
                let ok = match_and_bind(ce, wme, &mut bindings);
                debug_assert!(ok, "stored instantiation no longer matches");
                pos += 1;
            }
        }
        let wme = wm.get(wme_id).expect("live wme");
        let mut local = bindings;
        match_and_bind(&production.ces[ce_index], wme, &mut local)
    }
}

impl Matcher for TreatMatcher {
    fn add_wme(&mut self, wm: &WorkingMemory, id: WmeId) -> MatchDelta {
        self.stats.changes += 1;
        let wme = wm.get(id).expect("live wme");
        let network = Arc::clone(&self.network);
        let (alphas, tests) = network.alpha.matching(wme);
        self.stats.constant_tests += tests;
        for &a in &alphas {
            self.alpha_mems[a.index()].push(id);
        }

        let mut delta = MatchDelta::new();
        let mut subs: Vec<(ProductionId, usize)> = alphas
            .iter()
            .flat_map(|a| network.alpha.node(*a).subscribers.iter().copied())
            .collect();
        subs.sort_unstable();
        subs.dedup();

        for (pid, ce_index) in subs {
            let production = self.program.production(pid).clone();
            if production.ces[ce_index].negated {
                // The new WME may block existing instantiations.
                let existing: Vec<Instantiation> = self
                    .satisfied
                    .get(&pid)
                    .map(|s| s.iter().cloned().collect())
                    .unwrap_or_default();
                for inst in existing {
                    if self.blocks(wm, &production, &inst, ce_index, id) {
                        self.satisfied.get_mut(&pid).unwrap().remove(&inst);
                        delta.merge(MatchDelta {
                            added: vec![],
                            removed: vec![inst],
                        });
                    }
                }
            } else {
                for inst in self.seeded_join(wm, &production, ce_index, id) {
                    let set = self.satisfied.entry(pid).or_default();
                    if set.insert(inst.clone()) {
                        delta.merge(MatchDelta {
                            added: vec![inst],
                            removed: vec![],
                        });
                    }
                }
            }
        }
        delta
    }

    fn remove_wme(&mut self, wm: &WorkingMemory, id: WmeId) -> MatchDelta {
        self.stats.changes += 1;
        let wme = wm.get(id).expect("live wme");
        let network = Arc::clone(&self.network);
        let (alphas, tests) = network.alpha.matching(wme);
        self.stats.constant_tests += tests;
        for &a in &alphas {
            let mem = &mut self.alpha_mems[a.index()];
            if let Some(pos) = mem.iter().position(|&w| w == id) {
                mem.swap_remove(pos);
            }
        }

        let mut delta = MatchDelta::new();
        let mut subs: Vec<(ProductionId, usize)> = alphas
            .iter()
            .flat_map(|a| network.alpha.node(*a).subscribers.iter().copied())
            .collect();
        subs.sort_unstable();
        subs.dedup();

        // First pass: retract instantiations containing the WME.
        let mut prods: Vec<ProductionId> = subs.iter().map(|&(p, _)| p).collect();
        prods.dedup();
        for &pid in &prods {
            if let Some(set) = self.satisfied.get_mut(&pid) {
                let gone: Vec<Instantiation> = set
                    .iter()
                    .filter(|i| i.wmes.contains(&id))
                    .cloned()
                    .collect();
                for inst in gone {
                    set.remove(&inst);
                    delta.merge(MatchDelta {
                        added: vec![],
                        removed: vec![inst],
                    });
                }
            }
        }

        // Second pass: a retraction matching a negated CE may unblock
        // instantiations; recompute those productions and diff.
        let mut neg_prods: Vec<ProductionId> = subs
            .iter()
            .filter(|&&(p, ce)| self.program.production(p).ces[ce].negated)
            .map(|&(p, _)| p)
            .collect();
        neg_prods.dedup();
        for pid in neg_prods {
            let production = self.program.production(pid).clone();
            let fresh: HashSet<Instantiation> =
                self.full_join(wm, &production).into_iter().collect();
            let set = self.satisfied.entry(pid).or_default();
            let added: Vec<Instantiation> = fresh.difference(set).cloned().collect();
            for inst in added {
                set.insert(inst.clone());
                delta.merge(MatchDelta {
                    added: vec![inst],
                    removed: vec![],
                });
            }
        }
        delta
    }

    fn algorithm_name(&self) -> &'static str {
        "treat"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::{parse_program, parse_wme, SymbolTable};

    fn setup(src: &str) -> (TreatMatcher, WorkingMemory, SymbolTable) {
        let program = parse_program(src).unwrap();
        let m = TreatMatcher::compile(&program).unwrap();
        let syms = program.symbols.clone();
        (m, WorkingMemory::new(), syms)
    }

    fn add(
        m: &mut TreatMatcher,
        wm: &mut WorkingMemory,
        syms: &mut SymbolTable,
        lit: &str,
    ) -> (WmeId, MatchDelta) {
        let wme = parse_wme(lit, syms).unwrap();
        let (id, _) = wm.add(wme);
        let d = m.add_wme(wm, id);
        (id, d)
    }

    fn remove(m: &mut TreatMatcher, wm: &mut WorkingMemory, id: WmeId) -> MatchDelta {
        let d = m.remove_wme(wm, id);
        wm.remove(id);
        d
    }

    #[test]
    fn join_via_seeding() {
        let (mut m, mut wm, mut syms) = setup("(p r (a ^x <v>) (b ^x <v>) --> (remove 1))");
        let (ia, d) = add(&mut m, &mut wm, &mut syms, "(a ^x 1)");
        assert!(d.is_empty());
        let (ib, d) = add(&mut m, &mut wm, &mut syms, "(b ^x 1)");
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.added[0].wmes, vec![ia, ib]);
    }

    #[test]
    fn early_exit_on_empty_memory() {
        let (mut m, mut wm, mut syms) =
            setup("(p r (a ^x <v>) (b ^x <v>) (c ^x <v>) --> (remove 1))");
        add(&mut m, &mut wm, &mut syms, "(a ^x 1)");
        let before = m.stats().candidates_examined;
        // Adding another `a` cannot satisfy the rule: `b`/`c` memories
        // are empty, so the join aborts without examining candidates.
        add(&mut m, &mut wm, &mut syms, "(a ^x 2)");
        assert_eq!(m.stats().candidates_examined, before);
    }

    #[test]
    fn duplicate_wme_positions_counted_once() {
        let (mut m, mut wm, mut syms) = setup("(p r (n ^v <a>) (n ^v <a>) --> (remove 1))");
        let (_w1, d) = add(&mut m, &mut wm, &mut syms, "(n ^v 5)");
        assert_eq!(d.added.len(), 1, "(w1,w1) exactly once");
        let (_w2, d) = add(&mut m, &mut wm, &mut syms, "(n ^v 5)");
        assert_eq!(d.added.len(), 3, "(w1,w2),(w2,w1),(w2,w2)");
    }

    #[test]
    fn negation_blocks_and_unblocks() {
        let (mut m, mut wm, mut syms) =
            setup("(p r (goal ^c <v>) - (block ^c <v>) --> (remove 1))");
        let (_g, d) = add(&mut m, &mut wm, &mut syms, "(goal ^c red)");
        assert_eq!(d.added.len(), 1);
        let (b, d) = add(&mut m, &mut wm, &mut syms, "(block ^c red)");
        assert_eq!(d.removed.len(), 1);
        let (b2, d) = add(&mut m, &mut wm, &mut syms, "(block ^c blue)");
        assert!(d.is_empty());
        let d = remove(&mut m, &mut wm, b);
        assert_eq!(d.added.len(), 1);
        let d = remove(&mut m, &mut wm, b2);
        assert!(d.is_empty());
    }

    #[test]
    fn retraction_removes_containing_instantiations() {
        let (mut m, mut wm, mut syms) = setup("(p r (a ^x <v>) (b ^x <v>) --> (remove 1))");
        let (ia, _) = add(&mut m, &mut wm, &mut syms, "(a ^x 1)");
        add(&mut m, &mut wm, &mut syms, "(b ^x 1)");
        add(&mut m, &mut wm, &mut syms, "(b ^x 1)");
        let d = remove(&mut m, &mut wm, ia);
        assert_eq!(d.removed.len(), 2);
        assert_eq!(m.resident_state(), 2, "only the two b's remain");
    }

    #[test]
    fn state_is_alpha_only() {
        let (mut m, mut wm, mut syms) = setup("(p r (a ^x <v>) (b ^x <v>) --> (remove 1))");
        // Rete would store a beta token for the (a,b) pair; TREAT's
        // resident state is exactly the WMEs in alpha memories.
        add(&mut m, &mut wm, &mut syms, "(a ^x 1)");
        add(&mut m, &mut wm, &mut syms, "(b ^x 1)");
        assert_eq!(m.resident_state(), 2);
    }
}
