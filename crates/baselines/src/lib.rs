//! # baselines — the match algorithms Rete is compared against
//!
//! Section 3.2 of Gupta, Forgy, Newell & Wedig (ISCA 1986) places match
//! algorithms on a spectrum by how much state they save between
//! recognize–act cycles:
//!
//! * [`NaiveMatcher`] — *no* state: re-matches the complete working
//!   memory against every production on each change (the
//!   non-state-saving side of the §3.1 cost model). It is also this
//!   workspace's correctness oracle: every other matcher is cross-checked
//!   against it.
//! * [`TreatMatcher`] — the low end of the spectrum: only per-condition-
//!   element (alpha) memories, with cross-CE joins recomputed on every
//!   change. This is the TREAT algorithm used on the DADO machine (§7.1).
//! * [`OflazerMatcher`] — the high end: tokens for **all** combinations
//!   of condition elements, Oflazer's scheme (§3.2, §7.3). Its state-size
//!   counters demonstrate the paper's "state may become very large /
//!   much of it is never used" critique.
//!
//! All three implement [`ops5::Matcher`], so they are drop-in
//! replacements for the Rete matchers in the interpreter and in every
//! experiment.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod naive;
pub mod oflazer;
pub mod treat;

pub use naive::{NaiveMatcher, NaiveStats};
pub use oflazer::{OflazerMatcher, OflazerStats};
pub use treat::{TreatMatcher, TreatStats};
