//! Oflazer's full-state matcher (§3.2 and §7.3 of the paper).
//!
//! Oflazer's thesis argues that *"both Treat and Rete are too
//! conservative in the amount of state they store"* and proposes storing
//! tokens matching **all combinations** of a production's condition
//! elements, so the interaction of a change with each stored token can be
//! computed independently (and, on his machine, in parallel).
//!
//! This implementation stores, for every production with `k` positive
//! condition elements, a memory for each of the `2^k − 1` non-empty CE
//! subsets, holding the mutually consistent WME tuples for that subset.
//! Consistency uses the same pairwise join tests the Rete compiler
//! derives, so the three algorithms differ *only* in state policy.
//!
//! The counters expose the paper's critique directly: state size blows up
//! combinatorially, and most tuples never contribute to an instantiation.
//!
//! # Limitations
//!
//! Negated condition elements are rejected at compile time ([`Error::Semantic`]):
//! Oflazer's scheme as described stores positive combinations, and the
//! workloads used for the state-spectrum experiments avoid negation.

use std::collections::HashMap;
use std::sync::Arc;

use ops5::{
    Error, Instantiation, MatchDelta, Matcher, ProductionId, Program, Wme, WmeId, WorkingMemory,
};
use rete::{JoinTest, Network};

/// Work and state counters for the Oflazer matcher.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OflazerStats {
    /// Working-memory changes processed.
    pub changes: u64,
    /// Constant (alpha) tests evaluated.
    pub constant_tests: u64,
    /// Pairwise consistency tests evaluated.
    pub consistency_tests: u64,
    /// Tuples created (all subset sizes).
    pub tuples_created: u64,
    /// Tuples deleted.
    pub tuples_deleted: u64,
    /// Tuples currently resident.
    pub tuples_resident: u64,
    /// Peak resident tuples — the state-size blow-up the paper warns
    /// about.
    pub peak_tuples: u64,
    /// Full-width tuples created (actual instantiations); the gap to
    /// `tuples_created` is state that never reached the conflict set.
    pub full_tuples_created: u64,
}

/// Per-production subset memories. Masks are bitsets over positive CE
/// indices; tuples store WMEs at the mask's set positions in ascending
/// CE order.
#[derive(Debug, Default)]
struct SubsetMemories {
    mems: HashMap<u32, Vec<Vec<WmeId>>>,
}

/// The all-combinations state-saving matcher.
///
/// # Examples
///
/// ```
/// use ops5::{parse_program, parse_wme, Interpreter};
/// use baselines::OflazerMatcher;
///
/// # fn main() -> Result<(), ops5::Error> {
/// let program = parse_program("(p r (a ^x <v>) (b ^x <v>) --> (remove 1))")?;
/// let matcher = OflazerMatcher::compile(&program)?;
/// let mut interp = Interpreter::new(program, matcher);
/// let mut syms = interp.program().symbols.clone();
/// interp.insert(parse_wme("(a ^x 1)", &mut syms)?);
/// interp.insert(parse_wme("(b ^x 1)", &mut syms)?);
/// assert_eq!(interp.run(10)?, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct OflazerMatcher {
    network: Arc<Network>,
    alpha_mems: Vec<Vec<WmeId>>,
    state: Vec<SubsetMemories>,
    /// Number of (positive) CEs per production.
    widths: Vec<usize>,
    stats: OflazerStats,
}

impl OflazerMatcher {
    /// Compiles `program`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Semantic`] if any production uses a negated
    /// condition element or has more than 30 condition elements.
    pub fn compile(program: &Program) -> Result<Self, Error> {
        for p in &program.productions {
            if p.ces.iter().any(|ce| ce.negated) {
                return Err(Error::Semantic {
                    production: p.name.clone(),
                    message: "the Oflazer matcher does not support negated condition elements"
                        .into(),
                });
            }
            if p.ces.len() > 30 {
                return Err(Error::Semantic {
                    production: p.name.clone(),
                    message: "too many condition elements for subset masks (max 30)".into(),
                });
            }
        }
        let network = Arc::new(Network::compile(program)?);
        let widths = program.productions.iter().map(|p| p.ces.len()).collect();
        let state = program
            .productions
            .iter()
            .map(|_| SubsetMemories::default())
            .collect();
        Ok(OflazerMatcher {
            alpha_mems: vec![Vec::new(); network.alpha.len()],
            network,
            state,
            widths,
            stats: OflazerStats::default(),
        })
    }

    /// Work and state counters so far.
    pub fn stats(&self) -> OflazerStats {
        self.stats
    }

    /// Checks pairwise consistency of placing `wme` at CE position `pos`
    /// against `tuple` covering the positions of `mask` (ascending).
    fn consistent(
        &mut self,
        wm: &WorkingMemory,
        pid: ProductionId,
        pos: usize,
        wme: &Wme,
        mask: u32,
        tuple: &[WmeId],
    ) -> bool {
        let tests_of = |ce: usize| -> &[JoinTest] { &self.network.ce_tests[pid.index()][ce] };
        let mut idx = 0usize;
        for other in 0..32 {
            if mask & (1 << other) == 0 {
                continue;
            }
            let other_wme = wm.get(tuple[idx]).expect("live wme in subset memory");
            // Tests always live on the *later* CE, referencing earlier
            // positions.
            let (later_ce, later_wme, earlier_pos, earlier_wme) = if other > pos {
                (other, other_wme, pos, wme)
            } else {
                (pos, wme, other, other_wme)
            };
            for t in tests_of(later_ce) {
                if t.token_pos != earlier_pos {
                    continue;
                }
                self.stats.consistency_tests += 1;
                let a = later_wme.get(t.own_attr);
                let b = earlier_wme.get(t.token_attr);
                match (a, b) {
                    (Some(a), Some(b)) if a.compare(t.op, b) => {}
                    _ => return false,
                }
            }
            idx += 1;
        }
        true
    }

    fn note_created(&mut self, full: bool) {
        self.stats.tuples_created += 1;
        self.stats.tuples_resident += 1;
        self.stats.peak_tuples = self.stats.peak_tuples.max(self.stats.tuples_resident);
        if full {
            self.stats.full_tuples_created += 1;
        }
    }
}

impl Matcher for OflazerMatcher {
    fn add_wme(&mut self, wm: &WorkingMemory, id: WmeId) -> MatchDelta {
        self.stats.changes += 1;
        let wme = wm.get(id).expect("live wme").clone();
        let network = Arc::clone(&self.network);
        let (alphas, tests) = network.alpha.matching(&wme);
        self.stats.constant_tests += tests;
        for &a in &alphas {
            self.alpha_mems[a.index()].push(id);
        }

        let mut delta = MatchDelta::new();
        let mut subs: Vec<(ProductionId, usize)> = alphas
            .iter()
            .flat_map(|a| network.alpha.node(*a).subscribers.iter().copied())
            .collect();
        subs.sort_unstable();
        subs.dedup();

        for (pid, pos) in subs {
            let width = self.widths[pid.index()];
            let full_mask = if width == 32 {
                u32::MAX
            } else {
                (1u32 << width) - 1
            };
            let bit = 1u32 << pos;
            // Collect source masks first (those not containing `pos`).
            let sources: Vec<u32> = self.state[pid.index()]
                .mems
                .keys()
                .copied()
                .filter(|m| m & bit == 0)
                .collect();
            let mut inserts: Vec<(u32, Vec<WmeId>)> = vec![(bit, vec![id])];
            for mask in sources {
                let tuples = self.state[pid.index()].mems[&mask].clone();
                for tuple in tuples {
                    if self.consistent(wm, pid, pos, &wme, mask, &tuple) {
                        // Splice `id` into CE order.
                        let mut merged = Vec::with_capacity(tuple.len() + 1);
                        let mut ti = 0usize;
                        for other in 0..32 {
                            if other == pos {
                                merged.push(id);
                            } else if mask & (1 << other) != 0 {
                                merged.push(tuple[ti]);
                                ti += 1;
                            }
                        }
                        inserts.push((mask | bit, merged));
                    }
                }
            }
            for (mask, tuple) in inserts {
                let full = mask == full_mask;
                if full {
                    delta.merge(MatchDelta {
                        added: vec![Instantiation::new(pid, tuple.clone())],
                        removed: vec![],
                    });
                }
                self.state[pid.index()]
                    .mems
                    .entry(mask)
                    .or_default()
                    .push(tuple);
                self.note_created(full);
            }
        }
        delta
    }

    fn remove_wme(&mut self, wm: &WorkingMemory, id: WmeId) -> MatchDelta {
        self.stats.changes += 1;
        let wme = wm.get(id).expect("live wme");
        let network = Arc::clone(&self.network);
        let (alphas, tests) = network.alpha.matching(wme);
        self.stats.constant_tests += tests;
        for &a in &alphas {
            let mem = &mut self.alpha_mems[a.index()];
            if let Some(pos) = mem.iter().position(|&w| w == id) {
                mem.swap_remove(pos);
            }
        }

        let mut delta = MatchDelta::new();
        let mut prods: Vec<ProductionId> = alphas
            .iter()
            .flat_map(|a| network.alpha.node(*a).subscribers.iter().map(|&(p, _)| p))
            .collect();
        prods.sort_unstable();
        prods.dedup();

        for pid in prods {
            let width = self.widths[pid.index()];
            let full_mask = if width == 32 {
                u32::MAX
            } else {
                (1u32 << width) - 1
            };
            let mut deleted = 0u64;
            for (&mask, tuples) in self.state[pid.index()].mems.iter_mut() {
                let before = tuples.len();
                tuples.retain(|t| {
                    let keep = !t.contains(&id);
                    if !keep && mask == full_mask {
                        delta.merge(MatchDelta {
                            added: vec![],
                            removed: vec![Instantiation::new(pid, t.clone())],
                        });
                    }
                    keep
                });
                deleted += (before - tuples.len()) as u64;
            }
            self.stats.tuples_deleted += deleted;
            self.stats.tuples_resident = self.stats.tuples_resident.saturating_sub(deleted);
        }
        delta
    }

    fn algorithm_name(&self) -> &'static str {
        "oflazer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::{parse_program, parse_wme, SymbolTable};

    fn setup(src: &str) -> (OflazerMatcher, WorkingMemory, SymbolTable) {
        let program = parse_program(src).unwrap();
        let m = OflazerMatcher::compile(&program).unwrap();
        let syms = program.symbols.clone();
        (m, WorkingMemory::new(), syms)
    }

    fn add(
        m: &mut OflazerMatcher,
        wm: &mut WorkingMemory,
        syms: &mut SymbolTable,
        lit: &str,
    ) -> (WmeId, MatchDelta) {
        let wme = parse_wme(lit, syms).unwrap();
        let (id, _) = wm.add(wme);
        let d = m.add_wme(wm, id);
        (id, d)
    }

    #[test]
    fn negated_ces_rejected() {
        let program = parse_program("(p r (a ^x 1) - (b ^y 2) --> (remove 1))").unwrap();
        assert!(OflazerMatcher::compile(&program).is_err());
    }

    #[test]
    fn two_ce_join() {
        let (mut m, mut wm, mut syms) = setup("(p r (a ^x <v>) (b ^x <v>) --> (remove 1))");
        let (ia, d) = add(&mut m, &mut wm, &mut syms, "(a ^x 1)");
        assert!(d.added.is_empty());
        let (ib, d) = add(&mut m, &mut wm, &mut syms, "(b ^x 1)");
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.added[0].wmes, vec![ia, ib]);
        let d = m.remove_wme(&wm, ia);
        wm.remove(ia);
        assert_eq!(d.removed.len(), 1);
    }

    #[test]
    fn stores_all_combinations() {
        // Three CEs over disjoint classes: after one consistent WME per
        // CE, every non-empty subset {a},{b},{c},{ab},{ac},{bc},{abc}
        // holds exactly one tuple.
        let (mut m, mut wm, mut syms) =
            setup("(p r (a ^x <v>) (b ^x <v>) (c ^x <v>) --> (remove 1))");
        add(&mut m, &mut wm, &mut syms, "(a ^x 1)");
        add(&mut m, &mut wm, &mut syms, "(b ^x 1)");
        let (_, d) = add(&mut m, &mut wm, &mut syms, "(c ^x 1)");
        assert_eq!(d.added.len(), 1);
        assert_eq!(m.stats().tuples_resident, 7, "2^3 - 1 subset tuples");
        // Rete would store: 3 alpha entries + 1 beta token (a,b) + the
        // instantiation — strictly less. The {a,c} and {b,c} tuples are
        // state Rete never materializes.
    }

    #[test]
    fn inconsistent_pairs_not_stored() {
        let (mut m, mut wm, mut syms) = setup("(p r (a ^x <v>) (b ^x <v>) --> (remove 1))");
        add(&mut m, &mut wm, &mut syms, "(a ^x 1)");
        let (_, d) = add(&mut m, &mut wm, &mut syms, "(b ^x 2)");
        assert!(d.added.is_empty());
        // Two singleton tuples, no pair.
        assert_eq!(m.stats().tuples_resident, 2);
    }

    #[test]
    fn wasted_state_counter() {
        let (mut m, mut wm, mut syms) =
            setup("(p r (a ^x <v>) (b ^x <v>) (c ^x <v>) --> (remove 1))");
        // Many (a,b) pairs but no c: lots of state, zero instantiations.
        for i in 0..4 {
            add(&mut m, &mut wm, &mut syms, &format!("(a ^x {i})"));
            add(&mut m, &mut wm, &mut syms, &format!("(b ^x {i})"));
        }
        let s = m.stats();
        assert_eq!(s.full_tuples_created, 0);
        assert!(s.tuples_created >= 12, "8 singletons + 4 pairs");
        assert!(s.peak_tuples >= 12);
    }

    #[test]
    fn removal_purges_all_subsets() {
        let (mut m, mut wm, mut syms) =
            setup("(p r (a ^x <v>) (b ^x <v>) (c ^x <v>) --> (remove 1))");
        let (ia, _) = add(&mut m, &mut wm, &mut syms, "(a ^x 1)");
        add(&mut m, &mut wm, &mut syms, "(b ^x 1)");
        add(&mut m, &mut wm, &mut syms, "(c ^x 1)");
        let d = m.remove_wme(&wm, ia);
        wm.remove(ia);
        assert_eq!(d.removed.len(), 1);
        // {b},{c},{bc} remain.
        assert_eq!(m.stats().tuples_resident, 3);
    }

    #[test]
    fn same_wme_in_multiple_positions() {
        let (mut m, mut wm, mut syms) = setup("(p r (n ^v <a>) (n ^v <a>) --> (remove 1))");
        let (_w1, d) = add(&mut m, &mut wm, &mut syms, "(n ^v 5)");
        assert_eq!(d.added.len(), 1);
        let (_w2, d) = add(&mut m, &mut wm, &mut syms, "(n ^v 5)");
        assert_eq!(d.added.len(), 3);
    }

    #[test]
    fn predicate_consistency() {
        let (mut m, mut wm, mut syms) = setup("(p r (lo ^v <x>) (hi ^v > <x>) --> (remove 1))");
        add(&mut m, &mut wm, &mut syms, "(lo ^v 10)");
        let (_, d) = add(&mut m, &mut wm, &mut syms, "(hi ^v 5)");
        assert!(d.added.is_empty());
        let (_, d) = add(&mut m, &mut wm, &mut syms, "(hi ^v 20)");
        assert_eq!(d.added.len(), 1);
    }
}
