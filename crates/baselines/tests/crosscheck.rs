//! Cross-checks every matcher against the naive reference semantics on
//! randomized working-memory change sequences.
//!
//! This is the repository's core correctness argument: the paper's
//! comparisons only make sense if TREAT, Rete, and the Oflazer matcher
//! compute *identical* conflict-set deltas for identical inputs.

use ops5::{parse_program, Matcher, Program, SymbolTable, Value, Wme, WmeId, WorkingMemory};
use psm_obs::Rng64;

use baselines::{NaiveMatcher, OflazerMatcher, TreatMatcher};
use rete::ReteMatcher;

/// A deterministic pseudo-random WME generator over a small vocabulary,
/// sized so joins, misses, and duplicates all occur.
struct WmeGen {
    classes: Vec<ops5::SymbolId>,
    attrs: Vec<ops5::SymbolId>,
    colors: Vec<ops5::SymbolId>,
}

impl WmeGen {
    fn new(syms: &mut SymbolTable) -> Self {
        WmeGen {
            classes: ["goal", "block", "table", "veto", "a", "b", "c"]
                .iter()
                .map(|s| syms.intern(s))
                .collect(),
            attrs: ["x", "y", "color", "size"]
                .iter()
                .map(|s| syms.intern(s))
                .collect(),
            colors: ["red", "blue", "green"]
                .iter()
                .map(|s| syms.intern(s))
                .collect(),
        }
    }

    fn gen(&self, rng: &mut Rng64) -> Wme {
        let class = self.classes[rng.gen_range(0..self.classes.len())];
        let n_attrs = rng.gen_range(0..=3usize);
        let mut attrs = Vec::new();
        for _ in 0..n_attrs {
            let attr = self.attrs[rng.gen_range(0..self.attrs.len())];
            let value = if rng.gen_bool(0.5) {
                Value::Int(rng.gen_range(0..4i64))
            } else {
                Value::Sym(self.colors[rng.gen_range(0..self.colors.len())])
            };
            attrs.push((attr, value));
        }
        Wme::new(class, attrs)
    }
}

/// Drives `steps` random adds/removes through all matchers, asserting
/// canonicalized delta equality after every change.
fn crosscheck(program: &Program, seed: u64, steps: usize, include_oflazer: bool) {
    let mut rng = Rng64::new(seed);
    let mut syms = program.symbols.clone();
    let gen = WmeGen::new(&mut syms);

    let mut naive = NaiveMatcher::new(program);
    let mut rete = ReteMatcher::compile(program).expect("rete compiles");
    let mut rete_hashed = ReteMatcher::compile_hashed(program).expect("hashed rete compiles");
    let mut treat = TreatMatcher::compile(program).expect("treat compiles");
    let mut oflazer = include_oflazer.then(|| OflazerMatcher::compile(program).expect("oflazer"));

    let mut wm = WorkingMemory::new();
    let mut live: Vec<WmeId> = Vec::new();

    for step in 0..steps {
        let remove = !live.is_empty() && rng.gen_bool(0.35);
        if remove {
            let idx = rng.gen_range(0..live.len());
            let id = live.swap_remove(idx);
            let mut d_naive = naive.remove_wme(&wm, id);
            let mut d_rete = rete.remove_wme(&wm, id);
            let mut d_hashed = rete_hashed.remove_wme(&wm, id);
            let mut d_treat = treat.remove_wme(&wm, id);
            let d_ofl = oflazer.as_mut().map(|m| m.remove_wme(&wm, id));
            wm.remove(id);
            d_naive.canonicalize();
            d_rete.canonicalize();
            d_hashed.canonicalize();
            d_treat.canonicalize();
            assert_eq!(d_rete, d_naive, "rete vs naive at remove step {step}");
            assert_eq!(
                d_hashed, d_naive,
                "hashed rete vs naive at remove step {step}"
            );
            assert_eq!(d_treat, d_naive, "treat vs naive at remove step {step}");
            if let Some(mut d) = d_ofl {
                d.canonicalize();
                assert_eq!(d, d_naive, "oflazer vs naive at remove step {step}");
            }
        } else {
            let wme = gen.gen(&mut rng);
            let (id, _) = wm.add(wme);
            live.push(id);
            let mut d_naive = naive.add_wme(&wm, id);
            let mut d_rete = rete.add_wme(&wm, id);
            let mut d_hashed = rete_hashed.add_wme(&wm, id);
            let mut d_treat = treat.add_wme(&wm, id);
            let d_ofl = oflazer.as_mut().map(|m| m.add_wme(&wm, id));
            d_naive.canonicalize();
            d_rete.canonicalize();
            d_hashed.canonicalize();
            d_treat.canonicalize();
            assert_eq!(d_rete, d_naive, "rete vs naive at add step {step}");
            assert_eq!(d_hashed, d_naive, "hashed rete vs naive at add step {step}");
            assert_eq!(d_treat, d_naive, "treat vs naive at add step {step}");
            if let Some(mut d) = d_ofl {
                d.canonicalize();
                assert_eq!(d, d_naive, "oflazer vs naive at add step {step}");
            }
        }
    }
}

/// Positive-only program exercising joins, predicates, disjunctions and
/// shared prefixes — safe for all four matchers.
const POSITIVE_PROGRAM: &str = r#"
(p pair (a ^x <v>) (b ^x <v>) --> (remove 1))
(p triple (a ^x <v>) (b ^x <v>) (c ^x <v>) --> (remove 1))
(p pred (a ^x <v>) (b ^x > <v>) --> (remove 1))
(p colors (block ^color << red blue >>) (goal ^color <c>) --> (remove 1))
(p same-class (block ^size <s>) (block ^size <s> ^color red) --> (remove 1))
(p range (a ^x { > 0 <v> }) (c ^y <v>) --> (remove 2))
"#;

/// Adds negated condition elements (rete/treat/naive only).
const NEGATED_PROGRAM: &str = r#"
(p guarded (goal ^color <c>) - (veto ^color <c>) --> (remove 1))
(p guarded2 (a ^x <v>) (b ^x <v>) - (veto ^x <v>) --> (remove 1))
(p neg-mid (a ^x <v>) - (veto ^x <v>) (c ^x <v>) --> (remove 1))
(p neg-plain (block ^size <s>) - (table) --> (remove 1))
(p two-negs (goal ^x <v>) - (a ^x <v>) - (b ^x <v>) --> (remove 1))
(p neg-first - (table) (a ^x <v>) --> (remove 2))
"#;

#[test]
fn positive_program_all_matchers_agree() {
    let program = parse_program(POSITIVE_PROGRAM).unwrap();
    for seed in 0..6 {
        crosscheck(&program, seed, 160, true);
    }
}

#[test]
fn negated_program_matchers_agree() {
    let program = parse_program(NEGATED_PROGRAM).unwrap();
    for seed in 0..6 {
        crosscheck(&program, 1000 + seed, 160, false);
    }
}

#[test]
fn combined_program_long_run() {
    let program = parse_program(&format!("{POSITIVE_PROGRAM}{NEGATED_PROGRAM}")).unwrap();
    crosscheck(&program, 42, 500, false);
}

#[test]
fn duplicate_heavy_sequences() {
    // Few distinct values => many duplicate WMEs and same-WME-multiple-CE
    // instantiations, the classic Rete correctness trap.
    let program = parse_program(
        r#"
        (p self (a ^x <v>) (a ^x <v>) --> (remove 1))
        (p self3 (a ^x <v>) (a ^x <v>) (a ^x <v>) --> (remove 1))
        "#,
    )
    .unwrap();
    let mut rng = Rng64::new(7);
    let mut syms = program.symbols.clone();
    let a = syms.intern("a");
    let x = syms.intern("x");

    let mut naive = NaiveMatcher::new(&program);
    let mut rete = ReteMatcher::compile(&program).unwrap();
    let mut wm = WorkingMemory::new();
    let mut live: Vec<WmeId> = Vec::new();
    for step in 0..200 {
        if !live.is_empty() && rng.gen_bool(0.4) {
            let id = live.swap_remove(rng.gen_range(0..live.len()));
            let mut d1 = naive.remove_wme(&wm, id);
            let mut d2 = rete.remove_wme(&wm, id);
            wm.remove(id);
            d1.canonicalize();
            d2.canonicalize();
            assert_eq!(d1, d2, "step {step}");
        } else {
            let wme = Wme::new(a, vec![(x, Value::Int(rng.gen_range(0..2i64)))]);
            let (id, _) = wm.add(wme);
            live.push(id);
            let mut d1 = naive.add_wme(&wm, id);
            let mut d2 = rete.add_wme(&wm, id);
            d1.canonicalize();
            d2.canonicalize();
            assert_eq!(d1, d2, "step {step}");
        }
    }
}
