//! Delta checkpoints: `PSMD`, a binary diff between two `PSMC` images.
//!
//! Full checkpoints scale with working-memory size, so checkpointing
//! every few cycles on a large preset writes the same hundreds of
//! kilobytes over and over (Hiperfact's observation: the fact store is
//! the throughput-critical persistent structure, and delta encoding
//! against it is what makes frequent persistence affordable). A
//! [`DeltaCheckpoint`] instead stores only what changed since the
//! parent checkpoint, as a greedy block-match diff over the canonical
//! `PSMC` byte encoding:
//!
//! * the parent image is indexed in [`BLOCK`]-byte aligned blocks;
//! * the child image is scanned byte-by-byte, emitting
//!   [`DiffOp::Copy`] ranges (extended past the block while bytes keep
//!   matching, rsync-style, so insertions that shift later content
//!   still re-align) and literal [`DiffOp::Insert`] runs between them;
//! * the artifact records the parent's and the reconstructed child's
//!   CRC-32, so applying a delta to the wrong parent — or a corrupt
//!   delta to the right one — fails loudly instead of producing a
//!   plausible wrong state. That pair of CRCs is the chain-validity
//!   check.
//!
//! [`CheckpointChain`] strings deltas behind periodic full-snapshot
//! anchors: every `anchor_every`-th checkpoint is stored whole (and
//! prunes everything older), the rest as deltas against their
//! predecessor. [`CheckpointChain::restore_tip`] re-derives the latest
//! checkpoint purely from stored artifacts — the tests assert it is
//! byte-identical to the live one.

use ops5::{ByteReader, ByteWriter, CodecError};
use std::collections::HashMap;

use crate::checkpoint::Checkpoint;
use crate::segment::crc32;

const MAGIC: [u8; 4] = *b"PSMD";
const VERSION: u32 = 1;
/// Diff granularity: parent blocks are indexed at this alignment.
const BLOCK: usize = 32;

/// One diff instruction over the parent image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffOp {
    /// Copy `len` bytes from parent offset `off`.
    Copy {
        /// Byte offset into the parent image.
        off: usize,
        /// Bytes to copy.
        len: usize,
    },
    /// Emit literal bytes present only in the child.
    Insert(Vec<u8>),
}

/// Greedy block-match diff from `old` to `new`.
///
/// Not minimal — matches only start at [`BLOCK`]-aligned offsets of
/// `old` — but linear-ish, deterministic, and small whenever most of
/// `new` already exists in `old`, which is exactly the checkpoint
/// workload.
pub fn diff(old: &[u8], new: &[u8]) -> Vec<DiffOp> {
    let mut index: HashMap<&[u8], usize> = HashMap::new();
    let mut at = 0;
    while at + BLOCK <= old.len() {
        // First occurrence wins; ties don't matter for correctness.
        index.entry(&old[at..at + BLOCK]).or_insert(at);
        at += BLOCK;
    }

    let mut ops: Vec<DiffOp> = Vec::new();
    let mut pending: Vec<u8> = Vec::new();
    let mut i = 0;
    while i < new.len() {
        let matched = if i + BLOCK <= new.len() {
            index.get(&new[i..i + BLOCK]).copied()
        } else {
            None
        };
        match matched {
            Some(off) => {
                if !pending.is_empty() {
                    ops.push(DiffOp::Insert(std::mem::take(&mut pending)));
                }
                // Extend the match past the block boundary.
                let mut len = BLOCK;
                while off + len < old.len() && i + len < new.len() && old[off + len] == new[i + len]
                {
                    len += 1;
                }
                // Coalesce with a preceding contiguous copy.
                if let Some(DiffOp::Copy {
                    off: prev_off,
                    len: prev_len,
                }) = ops.last_mut()
                {
                    if *prev_off + *prev_len == off {
                        *prev_len += len;
                        i += len;
                        continue;
                    }
                }
                ops.push(DiffOp::Copy { off, len });
                i += len;
            }
            None => {
                pending.push(new[i]);
                i += 1;
            }
        }
    }
    if !pending.is_empty() {
        ops.push(DiffOp::Insert(pending));
    }
    ops
}

/// Replays `ops` against `old`, producing the child image.
///
/// # Errors
///
/// [`CodecError::Invalid`] when a copy range overruns the parent.
pub fn apply(old: &[u8], ops: &[DiffOp]) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    for op in ops {
        match op {
            DiffOp::Copy { off, len } => {
                let end = off
                    .checked_add(*len)
                    .ok_or(CodecError::Invalid("delta copy range overflows"))?;
                if end > old.len() {
                    return Err(CodecError::Invalid("delta copy range overruns parent"));
                }
                out.extend_from_slice(&old[*off..end]);
            }
            DiffOp::Insert(bytes) => out.extend_from_slice(bytes),
        }
    }
    Ok(out)
}

/// A delta checkpoint: everything needed to rebuild the child `PSMC`
/// image given its parent's bytes, plus the CRC pair that validates
/// the chain link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaCheckpoint {
    /// The child checkpoint's cycle (doubles as its artifact id).
    pub cycle: u64,
    /// The parent checkpoint's cycle.
    pub parent: u64,
    /// CRC-32 of the parent's full `PSMC` bytes.
    pub parent_crc: u32,
    /// CRC-32 of the reconstructed child's full `PSMC` bytes.
    pub result_crc: u32,
    /// The diff script, parent → child.
    pub ops: Vec<DiffOp>,
}

impl DeltaCheckpoint {
    /// Diffs `next` against `prev` (both as full checkpoints).
    pub fn encode(prev: &Checkpoint, next: &Checkpoint) -> DeltaCheckpoint {
        let old = prev.to_bytes();
        let new = next.to_bytes();
        DeltaCheckpoint {
            cycle: next.cycle,
            parent: prev.cycle,
            parent_crc: crc32(&old),
            result_crc: crc32(&new),
            ops: diff(&old, &new),
        }
    }

    /// Rebuilds the child checkpoint from its parent, enforcing both
    /// chain-validity CRCs.
    ///
    /// # Errors
    ///
    /// [`CodecError::Invalid`] when `prev` is not the recorded parent
    /// (cycle or CRC mismatch) or the reconstruction's CRC disagrees
    /// with the recorded result; any [`CodecError`] from decoding the
    /// reconstructed image.
    pub fn apply(&self, prev: &Checkpoint) -> Result<Checkpoint, CodecError> {
        if prev.cycle != self.parent {
            return Err(CodecError::Invalid("delta applied to wrong parent cycle"));
        }
        let old = prev.to_bytes();
        if crc32(&old) != self.parent_crc {
            return Err(CodecError::Invalid("delta parent CRC mismatch"));
        }
        let new = apply(&old, &self.ops)?;
        if crc32(&new) != self.result_crc {
            return Err(CodecError::Invalid("delta result CRC mismatch"));
        }
        Checkpoint::from_bytes(&new)
    }

    /// Serializes the delta (`PSMD` v1).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_header(MAGIC, VERSION);
        w.u64(self.cycle);
        w.u64(self.parent);
        w.u32(self.parent_crc);
        w.u32(self.result_crc);
        w.usize(self.ops.len());
        for op in &self.ops {
            match op {
                DiffOp::Copy { off, len } => {
                    w.u8(0);
                    w.usize(*off);
                    w.usize(*len);
                }
                DiffOp::Insert(bytes) => {
                    w.u8(1);
                    w.usize(bytes.len());
                    for &b in bytes {
                        w.u8(b);
                    }
                }
            }
        }
        w.finish()
    }

    /// Deserializes a delta produced by [`DeltaCheckpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`CodecError`] on a bad header, truncation, an unknown op tag,
    /// or trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<DeltaCheckpoint, CodecError> {
        let (mut r, version) = ByteReader::with_header(bytes, MAGIC)?;
        if version != VERSION {
            return Err(CodecError::BadVersion {
                supported: VERSION,
                found: version,
            });
        }
        let cycle = r.u64()?;
        let parent = r.u64()?;
        let parent_crc = r.u32()?;
        let result_crc = r.u32()?;
        let n = r.usize()?;
        let mut ops = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            ops.push(match r.u8()? {
                0 => DiffOp::Copy {
                    off: r.usize()?,
                    len: r.usize()?,
                },
                1 => {
                    let m = r.usize()?;
                    if m > r.remaining() {
                        return Err(CodecError::UnexpectedEof);
                    }
                    let mut bytes = Vec::with_capacity(m);
                    for _ in 0..m {
                        bytes.push(r.u8()?);
                    }
                    DiffOp::Insert(bytes)
                }
                _ => return Err(CodecError::Invalid("unknown delta op tag")),
            });
        }
        if !r.is_done() {
            return Err(CodecError::Invalid("trailing bytes after delta"));
        }
        Ok(DeltaCheckpoint {
            cycle,
            parent,
            parent_crc,
            result_crc,
            ops,
        })
    }
}

/// One stored artifact in a chain, as advertised to replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainArtifact {
    /// Checkpoint cycle (the artifact id).
    pub cycle: u64,
    /// Parent cycle for deltas; `None` for full anchors.
    pub parent: Option<u64>,
    /// Serialized artifact size in bytes.
    pub bytes: usize,
    /// CRC-32 of the serialized artifact.
    pub crc: u32,
}

impl ChainArtifact {
    /// True for full-snapshot anchors.
    pub fn is_full(&self) -> bool {
        self.parent.is_none()
    }
}

/// A delta chain: one full anchor plus the deltas committed since,
/// with the reconstructed tip cached for the next diff.
#[derive(Debug, Clone)]
pub struct CheckpointChain {
    anchor_every: u64,
    anchor_bytes: Vec<u8>,
    anchor_cycle: u64,
    deltas: Vec<DeltaCheckpoint>,
    tip: Checkpoint,
    pushed: u64,
    full_bytes: u64,
    delta_bytes: u64,
    full_count: u64,
    delta_count: u64,
}

impl CheckpointChain {
    /// Starts a chain anchored at `genesis`, re-anchoring with a full
    /// snapshot every `anchor_every` pushes (the pushes in between
    /// store deltas).
    pub fn new(genesis: &Checkpoint, anchor_every: u64) -> Self {
        let bytes = genesis.to_bytes();
        CheckpointChain {
            anchor_every: anchor_every.max(1),
            full_bytes: bytes.len() as u64,
            full_count: 1,
            anchor_bytes: bytes,
            anchor_cycle: genesis.cycle,
            deltas: Vec::new(),
            tip: genesis.clone(),
            pushed: 0,
            delta_bytes: 0,
            delta_count: 0,
        }
    }

    /// Appends `cp`, storing either a new full anchor (pruning the old
    /// chain) or a delta against the current tip. Returns the artifact
    /// descriptor of what was stored.
    pub fn push(&mut self, cp: &Checkpoint) -> ChainArtifact {
        self.pushed += 1;
        let artifact = if self.pushed.is_multiple_of(self.anchor_every) {
            let bytes = cp.to_bytes();
            let art = ChainArtifact {
                cycle: cp.cycle,
                parent: None,
                bytes: bytes.len(),
                crc: crc32(&bytes),
            };
            self.full_bytes += bytes.len() as u64;
            self.full_count += 1;
            self.anchor_bytes = bytes;
            self.anchor_cycle = cp.cycle;
            self.deltas.clear();
            art
        } else {
            let delta = DeltaCheckpoint::encode(&self.tip, cp);
            let bytes = delta.to_bytes();
            let art = ChainArtifact {
                cycle: cp.cycle,
                parent: Some(delta.parent),
                bytes: bytes.len(),
                crc: crc32(&bytes),
            };
            self.delta_bytes += bytes.len() as u64;
            self.delta_count += 1;
            self.deltas.push(delta);
            art
        };
        self.tip = cp.clone();
        artifact
    }

    /// The cached latest checkpoint.
    pub fn tip(&self) -> &Checkpoint {
        &self.tip
    }

    /// The anchor's cycle.
    pub fn anchor_cycle(&self) -> u64 {
        self.anchor_cycle
    }

    /// Serialized artifact bytes for checkpoint `cycle`: the anchor's
    /// `PSMC` bytes or a stored delta's `PSMD` bytes.
    pub fn artifact_bytes(&self, cycle: u64) -> Option<Vec<u8>> {
        if cycle == self.anchor_cycle {
            return Some(self.anchor_bytes.clone());
        }
        self.deltas
            .iter()
            .find(|d| d.cycle == cycle)
            .map(DeltaCheckpoint::to_bytes)
    }

    /// Descriptors for the anchor plus every stored delta, in replay
    /// order.
    pub fn artifacts(&self) -> Vec<ChainArtifact> {
        let mut out = vec![ChainArtifact {
            cycle: self.anchor_cycle,
            parent: None,
            bytes: self.anchor_bytes.len(),
            crc: crc32(&self.anchor_bytes),
        }];
        for d in &self.deltas {
            let bytes = d.to_bytes();
            out.push(ChainArtifact {
                cycle: d.cycle,
                parent: Some(d.parent),
                bytes: bytes.len(),
                crc: crc32(&bytes),
            });
        }
        out
    }

    /// Rebuilds the tip purely from stored artifacts: decode the
    /// anchor, then apply each delta with its CRC pair enforced.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] from a corrupt anchor or a failed chain link.
    pub fn restore_tip(&self) -> Result<Checkpoint, CodecError> {
        let mut cp = Checkpoint::from_bytes(&self.anchor_bytes)?;
        for d in &self.deltas {
            cp = d.apply(&cp)?;
        }
        Ok(cp)
    }

    /// Cumulative (bytes, count) of full-anchor artifacts stored.
    pub fn full_stats(&self) -> (u64, u64) {
        (self.full_bytes, self.full_count)
    }

    /// Cumulative (bytes, count) of delta artifacts stored.
    pub fn delta_stats(&self) -> (u64, u64) {
        (self.delta_bytes, self.delta_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::{Instantiation, ProductionId, WmeId, WorkingMemory};
    use rete::ReteSnapshot;

    fn cp(cycle: u64, seed: u8, insts: usize) -> Checkpoint {
        // Synthetic but realistic shape: a few hundred bytes of
        // pseudo-state plus a conflict set.
        let rete: Vec<u8> = (0..600u32).map(|i| (i as u8).wrapping_add(seed)).collect();
        Checkpoint {
            cycle,
            wm: WorkingMemory::new().snapshot_bytes(),
            rete: ReteSnapshot::from_bytes(rete),
            conflict: (0..insts)
                .map(|i| Instantiation::new(ProductionId(i as u32), vec![WmeId::from_index(i)]))
                .collect(),
        }
    }

    #[test]
    fn diff_apply_roundtrips() {
        let old: Vec<u8> = (0..500u32).map(|i| i as u8).collect();
        // Insert in the middle, mutate a byte, append a tail: the diff
        // must re-align after each disturbance.
        let mut new = old.clone();
        new.insert(100, 0xAA);
        new[300] ^= 0x55;
        new.extend_from_slice(&[1, 2, 3, 4, 5]);
        let ops = diff(&old, &new);
        assert_eq!(apply(&old, &ops).unwrap(), new);
        let literal: usize = ops
            .iter()
            .map(|op| match op {
                DiffOp::Insert(b) => b.len(),
                DiffOp::Copy { .. } => 0,
            })
            .sum();
        assert!(
            literal < 150,
            "small edits stay small: {literal} literal bytes"
        );
        assert_eq!(apply(&[], &diff(&[], &[])).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn apply_rejects_bad_ranges() {
        let err = apply(&[0; 8], &[DiffOp::Copy { off: 4, len: 8 }]);
        assert!(err.is_err());
        let err = apply(
            &[0; 8],
            &[DiffOp::Copy {
                off: usize::MAX,
                len: 2,
            }],
        );
        assert!(err.is_err());
    }

    #[test]
    fn delta_roundtrips_and_validates_the_chain() {
        let a = cp(4, 1, 3);
        let b = cp(8, 2, 5);
        let d = DeltaCheckpoint::encode(&a, &b);
        assert_eq!(d.apply(&a).unwrap(), b);
        let back = DeltaCheckpoint::from_bytes(&d.to_bytes()).unwrap();
        assert_eq!(back, d);

        // Wrong parent: cycle mismatch, then CRC mismatch.
        let c = cp(6, 3, 3);
        assert!(d.apply(&c).is_err(), "wrong parent cycle");
        let mut imposter = cp(4, 9, 3);
        imposter.cycle = 4;
        assert!(d.apply(&imposter).is_err(), "wrong parent bytes");

        // Tampered delta: result CRC catches it.
        let mut tampered = d.clone();
        if let Some(DiffOp::Insert(bytes)) = tampered
            .ops
            .iter_mut()
            .find(|op| matches!(op, DiffOp::Insert(_)))
        {
            bytes[0] ^= 0xFF;
            assert!(tampered.apply(&a).is_err(), "result CRC mismatch");
        }
    }

    #[test]
    fn delta_rejects_corrupt_bytes() {
        let d = DeltaCheckpoint::encode(&cp(0, 1, 1), &cp(4, 2, 2));
        let bytes = d.to_bytes();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(DeltaCheckpoint::from_bytes(&bad).is_err(), "bad magic");
        let mut bad = bytes.clone();
        bad.truncate(bad.len() - 1);
        assert!(DeltaCheckpoint::from_bytes(&bad).is_err(), "eof");
        let mut bad = bytes;
        bad.push(0);
        assert!(DeltaCheckpoint::from_bytes(&bad).is_err(), "trailing");
    }

    #[test]
    fn chain_anchors_prunes_and_restores() {
        let genesis = cp(0, 0, 0);
        let mut chain = CheckpointChain::new(&genesis, 4);
        let mut arts = Vec::new();
        for k in 1..=6u64 {
            arts.push(chain.push(&cp(k * 4, k as u8, k as usize)));
        }
        // Push 4 re-anchored; pushes 5 and 6 are deltas on top of it.
        assert!(arts[3].is_full());
        assert!(arts[0].parent.is_some() && arts[4].parent.is_some());
        assert_eq!(chain.anchor_cycle(), 16);
        assert_eq!(chain.artifacts().len(), 3, "anchor + two deltas");
        assert_eq!(chain.restore_tip().unwrap(), *chain.tip());
        assert!(chain.artifact_bytes(16).is_some());
        assert!(chain.artifact_bytes(24).is_some());
        assert!(
            chain.artifact_bytes(8).is_none(),
            "pre-anchor artifacts pruned"
        );
        let (fb, fc) = chain.full_stats();
        let (db, dc) = chain.delta_stats();
        assert_eq!(fc, 2, "genesis + re-anchor");
        assert_eq!(dc, 5, "pushes 1-3 and 5-6 stored as deltas");
        assert!(fb > 0 && db > 0);
    }
}
