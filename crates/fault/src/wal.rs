//! The write-ahead log of committed working-memory change batches.
//!
//! Recovery in this crate is *snapshot + replay*: restore the last
//! checkpoint, then re-apply the WAL tail. For that to reproduce the
//! exact pre-fault state, each entry must carry everything replay
//! needs: the asserted WMEs **with their original ids** (so replayed
//! `WorkingMemory::add` calls hand out the same handles) and the
//! retraction ids, in the original change order. This mirrors the §3.1
//! observation that state-saving algorithms only pay off if saved state
//! can be re-derived exactly.
//!
//! The log serializes with the workspace's zero-dependency codec under
//! magic `PSML`, version 1.

use ops5::{ByteReader, ByteWriter, Change, CodecError, Wme, WmeId};

const MAGIC: [u8; 4] = *b"PSML";
const VERSION: u32 = 1;

/// One logged working-memory change, in original batch order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalChange {
    /// An assertion: the WME's contents plus the id the working memory
    /// assigned it (replay asserts the same id comes back).
    Add(Wme, WmeId),
    /// A retraction by id (the WME's contents live in an earlier
    /// `Add`, possibly in the checkpoint's working-memory image).
    Remove(WmeId),
}

impl WalChange {
    /// The [`ops5::Change`] this entry replays as.
    pub fn as_change(&self) -> Change {
        match self {
            WalChange::Add(_, id) => Change::Add(*id),
            WalChange::Remove(id) => Change::Remove(*id),
        }
    }
}

/// One committed batch: the supervised cycle index plus its changes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalEntry {
    /// Supervised cycle the batch belongs to.
    pub cycle: u64,
    /// The batch's changes in original order.
    pub changes: Vec<WalChange>,
}

/// An in-memory write-ahead log, truncated at every checkpoint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Wal {
    entries: Vec<WalEntry>,
}

impl Wal {
    /// An empty log.
    pub fn new() -> Self {
        Wal::default()
    }

    /// Appends a committed batch.
    pub fn push(&mut self, entry: WalEntry) {
        self.entries.push(entry);
    }

    /// The committed batches since the last checkpoint, oldest first.
    pub fn entries(&self) -> &[WalEntry] {
        &self.entries
    }

    /// Number of logged batches.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no batches are logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all entries (called after a checkpoint captures them).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Serializes the log (`PSML` v1).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_header(MAGIC, VERSION);
        w.usize(self.entries.len());
        for entry in &self.entries {
            encode_entry(&mut w, entry);
        }
        w.finish()
    }

    /// Deserializes a log produced by [`Wal::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Wal, CodecError> {
        let (mut r, version) = ByteReader::with_header(bytes, MAGIC)?;
        if version != VERSION {
            return Err(CodecError::BadVersion {
                supported: VERSION,
                found: version,
            });
        }
        let n = r.usize()?;
        let mut entries = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            entries.push(decode_entry(&mut r)?);
        }
        if !r.is_done() {
            return Err(CodecError::Invalid("trailing bytes after WAL"));
        }
        Ok(Wal { entries })
    }
}

/// Encodes one [`WalEntry`] (cycle, then tagged changes) into `w`. The
/// same payload encoding is shared by the whole-log `PSML` v1 format
/// and the CRC-framed records inside [`crate::segment::WalSegment`]s.
pub fn encode_entry(w: &mut ByteWriter, entry: &WalEntry) {
    w.u64(entry.cycle);
    w.usize(entry.changes.len());
    for change in &entry.changes {
        match change {
            WalChange::Add(wme, id) => {
                w.u8(0);
                wme.encode(w);
                w.usize(id.index());
            }
            WalChange::Remove(id) => {
                w.u8(1);
                w.usize(id.index());
            }
        }
    }
}

/// Decodes one [`WalEntry`] written by [`encode_entry`].
///
/// # Errors
///
/// Returns [`CodecError`] on truncated data or an unknown change tag.
pub fn decode_entry(r: &mut ByteReader<'_>) -> Result<WalEntry, CodecError> {
    let cycle = r.u64()?;
    let m = r.usize()?;
    let mut changes = Vec::with_capacity(m.min(1 << 16));
    for _ in 0..m {
        changes.push(match r.u8()? {
            0 => {
                let wme = Wme::decode(r)?;
                WalChange::Add(wme, WmeId::from_index(r.usize()?))
            }
            1 => WalChange::Remove(WmeId::from_index(r.usize()?)),
            _ => return Err(CodecError::Invalid("unknown WAL change tag")),
        });
    }
    Ok(WalEntry { cycle, changes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ops5::{SymbolTable, Value};

    #[test]
    fn wal_roundtrips_through_bytes() {
        let mut syms = SymbolTable::new();
        let class = syms.intern("goal");
        let attr = syms.intern("status");
        let val = syms.intern("active");
        let wme = Wme::new(class, vec![(attr, Value::Sym(val))]);

        let mut wal = Wal::new();
        wal.push(WalEntry {
            cycle: 0,
            changes: vec![WalChange::Add(wme.clone(), WmeId::from_index(0))],
        });
        wal.push(WalEntry {
            cycle: 1,
            changes: vec![
                WalChange::Remove(WmeId::from_index(0)),
                WalChange::Add(wme, WmeId::from_index(1)),
            ],
        });
        let bytes = wal.to_bytes();
        let back = Wal::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(back, wal);
        assert_eq!(back.entries()[1].changes[0].as_change().wme().index(), 0);
    }

    #[test]
    fn wal_rejects_corruption() {
        let wal = Wal::new();
        let mut bytes = wal.to_bytes();
        bytes[0] = b'X';
        assert!(Wal::from_bytes(&bytes).is_err(), "bad magic");
        let mut bytes = wal.to_bytes();
        bytes.push(0);
        assert!(Wal::from_bytes(&bytes).is_err(), "trailing bytes");
    }
}
