//! Versioned whole-engine checkpoints.
//!
//! A [`Checkpoint`] captures everything needed to resume matching from
//! a committed cycle: the working memory image (with future-id
//! continuity), the sequential Rete matcher's dynamic state (alpha and
//! beta memories, negation counts, statistics — see
//! [`rete::ReteSnapshot`]), and the conflict set. Recovery restores the
//! checkpoint and replays the WAL tail; because both sub-snapshots are
//! canonical byte encodings, "recovered exactly" is checkable with
//! `==` on bytes.
//!
//! Serialized under magic `PSMC`, version 1.

use ops5::{ByteReader, ByteWriter, CodecError, Instantiation, ProductionId, WmeId, WorkingMemory};
use rete::ReteSnapshot;

const MAGIC: [u8; 4] = *b"PSMC";
const VERSION: u32 = 1;

/// A committed-state checkpoint: working memory + Rete state +
/// conflict set as of the end of `cycle`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Number of supervised cycles committed into this checkpoint
    /// (the next batch to run is cycle `cycle`).
    pub cycle: u64,
    /// Canonical [`WorkingMemory::snapshot_bytes`] image.
    pub wm: Vec<u8>,
    /// The sequential matcher's state snapshot.
    pub rete: ReteSnapshot,
    /// The conflict set, sorted canonically.
    pub conflict: Vec<Instantiation>,
}

impl Checkpoint {
    /// The genesis checkpoint: empty working memory, a fresh matcher's
    /// snapshot, empty conflict set.
    pub fn genesis(rete: ReteSnapshot) -> Self {
        Checkpoint {
            cycle: 0,
            wm: WorkingMemory::new().snapshot_bytes(),
            rete,
            conflict: Vec::new(),
        }
    }

    /// Serializes the checkpoint (`PSMC` v1).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_header(MAGIC, VERSION);
        w.u64(self.cycle);
        w.usize(self.wm.len());
        for &b in &self.wm {
            w.u8(b);
        }
        let rete = self.rete.as_bytes();
        w.usize(rete.len());
        for &b in rete {
            w.u8(b);
        }
        w.usize(self.conflict.len());
        for inst in &self.conflict {
            w.u32(inst.production.0);
            w.usize(inst.wmes.len());
            for id in &inst.wmes {
                w.usize(id.index());
            }
        }
        w.finish()
    }

    /// Deserializes a checkpoint produced by [`Checkpoint::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, CodecError> {
        let (mut r, version) = ByteReader::with_header(bytes, MAGIC)?;
        if version != VERSION {
            return Err(CodecError::BadVersion {
                supported: VERSION,
                found: version,
            });
        }
        let cycle = r.u64()?;
        let read_blob = |r: &mut ByteReader<'_>| -> Result<Vec<u8>, CodecError> {
            let n = r.usize()?;
            let mut v = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                v.push(r.u8()?);
            }
            Ok(v)
        };
        let wm = read_blob(&mut r)?;
        let rete = ReteSnapshot::from_bytes(read_blob(&mut r)?);
        let n = r.usize()?;
        let mut conflict = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let production = ProductionId(r.u32()?);
            let m = r.usize()?;
            let mut wmes = Vec::with_capacity(m.min(1 << 10));
            for _ in 0..m {
                wmes.push(WmeId::from_index(r.usize()?));
            }
            conflict.push(Instantiation::new(production, wmes));
        }
        if !r.is_done() {
            return Err(CodecError::Invalid("trailing bytes after checkpoint"));
        }
        Ok(Checkpoint {
            cycle,
            wm,
            rete,
            conflict,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_roundtrips_through_bytes() {
        let cp = Checkpoint {
            cycle: 17,
            wm: WorkingMemory::new().snapshot_bytes(),
            rete: ReteSnapshot::from_bytes(vec![1, 2, 3, 4]),
            conflict: vec![Instantiation::new(
                ProductionId(3),
                vec![WmeId::from_index(0), WmeId::from_index(9)],
            )],
        };
        let back = Checkpoint::from_bytes(&cp.to_bytes()).expect("roundtrip");
        assert_eq!(back, cp);
    }

    #[test]
    fn checkpoint_rejects_corruption() {
        let cp = Checkpoint::genesis(ReteSnapshot::from_bytes(Vec::new()));
        let mut bytes = cp.to_bytes();
        bytes[5] = 0xFF;
        assert!(Checkpoint::from_bytes(&bytes).is_err(), "bad version");
        let mut bytes = cp.to_bytes();
        bytes.truncate(bytes.len() - 1);
        assert!(Checkpoint::from_bytes(&bytes).is_err(), "eof");
    }
}
