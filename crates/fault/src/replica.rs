//! Warm-standby replication: shipping checkpoints and WAL segments
//! from a primary supervisor to a pull-based replica, and promoting
//! the replica to live matcher when the primary is killed.
//!
//! Three pieces:
//!
//! * [`ReplicationStore`] — the primary-side artifact store. The
//!   supervisor publishes every committed [`WalEntry`] into a
//!   [`SegmentedWal`] and every checkpoint into a [`CheckpointChain`]
//!   (full anchors + `PSMD` deltas); the store garbage-collects WAL
//!   segments once a checkpoint covers them and serves everything
//!   through [`psm_telemetry::replicate::ReplicaSource`], so it plugs
//!   straight into the telemetry listener's `/replicate/*` endpoints.
//! * [`StandbyReplica`] — the standby-side pull loop. Each
//!   [`StandbyReplica::poll`] reads the manifest, (re-)bases itself on
//!   the checkpoint chain when behind or gapped, replays WAL segments
//!   to a warm sequential state, and reports replication lag (also as
//!   `replica.*` gauges). Because replay uses the same entry protocol
//!   as local recovery, the warm state is byte-identical to the
//!   primary's committed state at the applied frontier.
//! * [`FailoverPair`] — primary + standby behind one
//!   [`ops5::Matcher`]. Driven by [`FaultPlan::primary_kill`], it
//!   kills the primary at a planned cycle (that batch never reaches
//!   it), lets the standby catch up from the store, and promotes it —
//!   the fourth rung of the degradation ladder
//!   ([`crate::Tier::Promoted`]). The chaos suite asserts the promoted
//!   run equals a never-faulted run byte-for-byte.

use std::collections::HashSet;
use std::sync::{Arc, Mutex, MutexGuard};

use ops5::{Change, Error, Instantiation, MatchDelta, Matcher, Program, WmeId, WorkingMemory};
use psm_obs::Obs;
use psm_telemetry::client::Json;
use psm_telemetry::replicate::ReplicaSource;
use rete::{Network, ReteMatcher};

use crate::checkpoint::Checkpoint;
use crate::delta::{ChainArtifact, CheckpointChain, DeltaCheckpoint};
use crate::plan::FaultPlan;
use crate::segment::{SegmentedWal, WalSegment};
use crate::supervisor::{apply_delta, replay_entry, Supervisor, SupervisorConfig, Tier};
use crate::wal::WalEntry;

/// Sizing knobs for the primary-side artifact store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationConfig {
    /// WAL segment rotation bound, bytes of framed entries.
    pub max_segment_bytes: usize,
    /// Checkpoints between full-snapshot anchors (the rest ship as
    /// deltas).
    pub anchor_every: u64,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig {
            max_segment_bytes: 16 * 1024,
            anchor_every: 8,
        }
    }
}

/// Cumulative artifact accounting, for reports and the size gates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicationStats {
    /// Bytes of full-checkpoint (`PSMC`) artifacts stored.
    pub full_bytes: u64,
    /// Full-checkpoint artifacts stored.
    pub full_count: u64,
    /// Bytes of delta (`PSMD`) artifacts stored.
    pub delta_bytes: u64,
    /// Delta artifacts stored.
    pub delta_count: u64,
    /// Live WAL segments (sealed + open).
    pub segments: usize,
    /// Bytes across live WAL segments.
    pub wal_bytes: usize,
    /// WAL segments dropped by coverage GC.
    pub segments_gced: u64,
    /// Committed cycles published by the primary.
    pub primary_cycle: u64,
}

struct StoreInner {
    chain: Option<CheckpointChain>,
    wal: SegmentedWal,
    primary_cycle: u64,
}

/// The primary-side replication store. Thread-safe: the supervisor
/// publishes from the match loop while telemetry workers serve reads.
pub struct ReplicationStore {
    config: ReplicationConfig,
    inner: Mutex<StoreInner>,
}

impl std::fmt::Debug for ReplicationStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicationStore")
            .field("config", &self.config)
            .finish()
    }
}

impl ReplicationStore {
    /// An empty store.
    pub fn new(config: ReplicationConfig) -> Self {
        ReplicationStore {
            inner: Mutex::new(StoreInner {
                chain: None,
                wal: SegmentedWal::new(config.max_segment_bytes),
                primary_cycle: 0,
            }),
            config,
        }
    }

    fn lock(&self) -> MutexGuard<'_, StoreInner> {
        // A panic while publishing leaves consistent-enough state for
        // read-only standbys; don't cascade the poison.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Publishes one committed batch (called by the supervisor for
    /// every entry it appends to its local WAL).
    pub fn publish_entry(&self, entry: &WalEntry) {
        let mut inner = self.lock();
        inner.wal.append(entry);
        inner.primary_cycle = inner.primary_cycle.max(entry.cycle + 1);
    }

    /// Publishes a checkpoint: pushes it onto the chain (anchor or
    /// delta per [`ReplicationConfig::anchor_every`]), seals the open
    /// WAL segment, and garbage-collects covered segments. Returns the
    /// stored artifact descriptor.
    pub fn publish_checkpoint(&self, cp: &Checkpoint) -> ChainArtifact {
        let anchor_every = self.config.anchor_every;
        let mut inner = self.lock();
        inner.primary_cycle = inner.primary_cycle.max(cp.cycle);
        let artifact = match &mut inner.chain {
            Some(chain) => chain.push(cp),
            None => {
                let chain = CheckpointChain::new(cp, anchor_every);
                let artifact = chain.artifacts()[0];
                inner.chain = Some(chain);
                artifact
            }
        };
        inner.wal.seal();
        inner.wal.gc_covered(cp.cycle);
        artifact
    }

    /// Artifact accounting so far.
    pub fn stats(&self) -> ReplicationStats {
        let inner = self.lock();
        let (full_bytes, full_count, delta_bytes, delta_count) = match &inner.chain {
            Some(chain) => {
                let (fb, fc) = chain.full_stats();
                let (db, dc) = chain.delta_stats();
                (fb, fc, db, dc)
            }
            None => (0, 0, 0, 0),
        };
        ReplicationStats {
            full_bytes,
            full_count,
            delta_bytes,
            delta_count,
            segments: inner.wal.manifest().len(),
            wal_bytes: inner.wal.total_bytes(),
            segments_gced: inner.wal.gc_dropped(),
            primary_cycle: inner.primary_cycle,
        }
    }
}

impl ReplicaSource for ReplicationStore {
    fn manifest(&self) -> Option<String> {
        let inner = self.lock();
        let chain = inner.chain.as_ref()?;
        let mut out = String::with_capacity(512);
        out.push_str("{\"primary_cycle\":");
        out.push_str(&inner.primary_cycle.to_string());
        out.push_str(",\"checkpoints\":[");
        for (i, a) in chain.artifacts().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"id\":");
            out.push_str(&a.cycle.to_string());
            out.push_str(",\"parent\":");
            match a.parent {
                Some(p) => out.push_str(&p.to_string()),
                None => out.push_str("null"),
            }
            out.push_str(",\"bytes\":");
            out.push_str(&a.bytes.to_string());
            out.push_str(",\"crc\":");
            out.push_str(&a.crc.to_string());
            out.push('}');
        }
        out.push_str("],\"segments\":[");
        for (i, m) in inner.wal.manifest().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"seq\":");
            out.push_str(&m.seq.to_string());
            out.push_str(",\"first_cycle\":");
            out.push_str(&m.first_cycle.to_string());
            out.push_str(",\"last_cycle\":");
            out.push_str(&m.last_cycle.to_string());
            out.push_str(",\"entries\":");
            out.push_str(&m.entries.to_string());
            out.push_str(",\"bytes\":");
            out.push_str(&m.bytes.to_string());
            out.push_str(",\"crc\":");
            out.push_str(&m.crc.to_string());
            out.push_str(",\"open\":");
            out.push_str(if m.open { "true" } else { "false" });
            out.push('}');
        }
        out.push_str("]}");
        Some(out)
    }

    fn checkpoint(&self, id: u64) -> Option<Vec<u8>> {
        self.lock().chain.as_ref()?.artifact_bytes(id)
    }

    fn wal_segment(&self, seq: u64) -> Option<Vec<u8>> {
        self.lock().wal.segment_bytes(seq)
    }
}

/// One poll's outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// Next cycle the replica would apply (everything below is warm).
    pub applied_cycle: u64,
    /// The primary's committed frontier per the manifest.
    pub primary_cycle: u64,
    /// `primary_cycle - applied_cycle`.
    pub lag: u64,
    /// True when this poll re-based from the checkpoint chain.
    pub rebased: bool,
}

struct WarmState {
    wm: WorkingMemory,
    matcher: ReteMatcher,
    conflict: HashSet<Instantiation>,
}

/// A pull-based warm standby. See the module docs for the protocol.
pub struct StandbyReplica {
    program: Program,
    network: Arc<Network>,
    source: Arc<dyn ReplicaSource>,
    obs: Option<Arc<Obs>>,
    state: Option<WarmState>,
    applied_cycle: u64,
    base_checkpoint: u64,
    polls: u64,
    rebases: u64,
    segments_fetched: u64,
    bytes_fetched: u64,
    lag: u64,
}

impl std::fmt::Debug for StandbyReplica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StandbyReplica")
            .field("applied_cycle", &self.applied_cycle)
            .field("lag", &self.lag)
            .field("polls", &self.polls)
            .finish()
    }
}

impl StandbyReplica {
    /// A cold standby reading from `source`. `network` must be the
    /// primary's compiled network (same program), or restored
    /// checkpoints will not fit.
    pub fn new(program: &Program, network: Arc<Network>, source: Arc<dyn ReplicaSource>) -> Self {
        StandbyReplica {
            program: program.clone(),
            network,
            source,
            obs: None,
            state: None,
            applied_cycle: 0,
            base_checkpoint: 0,
            polls: 0,
            rebases: 0,
            segments_fetched: 0,
            bytes_fetched: 0,
            lag: 0,
        }
    }

    /// Attaches an observability handle; poll outcomes publish
    /// `replica.*` gauges.
    pub fn attach_obs(&mut self, obs: Arc<Obs>) {
        self.obs = Some(obs);
    }

    /// Replication lag (cycles) as of the last poll.
    pub fn lag(&self) -> u64 {
        self.lag
    }

    /// Next cycle the replica would apply.
    pub fn applied_cycle(&self) -> u64 {
        self.applied_cycle
    }

    /// Polls performed.
    pub fn polls(&self) -> u64 {
        self.polls
    }

    /// Chain re-bases performed (initial base included).
    pub fn rebases(&self) -> u64 {
        self.rebases
    }

    /// Fetches the manifest's checkpoint chain and restores it to a
    /// warm state. Returns `false` when any artifact is missing or
    /// invalid (the next poll retries).
    fn rebase(&mut self, manifest: &Json) -> bool {
        let rows = manifest
            .get("checkpoints")
            .map(Json::items)
            .unwrap_or_default();
        let mut cp: Option<Checkpoint> = None;
        for row in rows {
            let Some(id) = row.get("id").and_then(Json::as_u64) else {
                return false;
            };
            let Some(bytes) = self.source.checkpoint(id) else {
                return false;
            };
            self.bytes_fetched += bytes.len() as u64;
            let is_full = matches!(row.get("parent"), Some(Json::Null) | None);
            cp = if is_full {
                Checkpoint::from_bytes(&bytes).ok()
            } else {
                let Some(parent) = cp else { return false };
                DeltaCheckpoint::from_bytes(&bytes)
                    .ok()
                    .and_then(|d| d.apply(&parent).ok())
            };
            if cp.is_none() {
                return false;
            }
        }
        let Some(cp) = cp else { return false };
        let Ok(matcher) = ReteMatcher::restore(self.network.clone(), &cp.rete) else {
            return false;
        };
        let Ok(wm) = WorkingMemory::restore_snapshot(&cp.wm) else {
            return false;
        };
        self.state = Some(WarmState {
            wm,
            matcher,
            conflict: cp.conflict.iter().cloned().collect(),
        });
        self.applied_cycle = cp.cycle;
        self.base_checkpoint = cp.cycle;
        self.rebases += 1;
        true
    }

    /// One pull round: manifest → (re-)base if needed → segment
    /// replay. Returns `None` when the source is unreachable or the
    /// manifest is unparseable; partial progress is kept either way.
    pub fn poll(&mut self) -> Option<ReplicaStatus> {
        self.polls += 1;
        let manifest_raw = self.source.manifest()?;
        let manifest = Json::parse(&manifest_raw)?;
        let primary_cycle = manifest.get("primary_cycle")?.as_u64()?;

        // (Re-)base from the checkpoint chain when cold, or when GC
        // dropped segments we still need: either the oldest surviving
        // entry starts past our frontier, or no segments survive at all
        // and the chain tip is ahead of us (the last checkpoint covered
        // the whole log). Coverage GC only ever drops a prefix of the
        // cycle stream, so surviving segments are contiguous and the
        // rebase target is always at or past the applied frontier.
        let segments = manifest
            .get("segments")
            .map(Json::items)
            .unwrap_or_default();
        let oldest = segments
            .iter()
            .filter(|s| s.get("entries").and_then(Json::as_u64).unwrap_or(0) > 0)
            .filter_map(|s| s.get("first_cycle").and_then(Json::as_u64))
            .min();
        let tip_checkpoint = manifest
            .get("checkpoints")
            .map(Json::items)
            .unwrap_or_default()
            .last()
            .and_then(|c| c.get("id"))
            .and_then(Json::as_u64);
        let gapped = match oldest {
            Some(first) => first > self.applied_cycle,
            None => tip_checkpoint.is_some_and(|tip| tip > self.applied_cycle),
        };
        let mut rebased = false;
        if self.state.is_none() || gapped {
            rebased = self.rebase(&manifest);
            self.state.as_ref()?;
        }

        // Replay every segment that can extend the frontier.
        if let Some(state) = &mut self.state {
            for seg in segments {
                let last = seg.get("last_cycle").and_then(Json::as_u64).unwrap_or(0);
                let entries = seg.get("entries").and_then(Json::as_u64).unwrap_or(0);
                if entries == 0 || last < self.applied_cycle {
                    continue;
                }
                let Some(seq) = seg.get("seq").and_then(Json::as_u64) else {
                    continue;
                };
                let Some(bytes) = self.source.wal_segment(seq) else {
                    continue;
                };
                self.segments_fetched += 1;
                self.bytes_fetched += bytes.len() as u64;
                let Ok((segment, _)) = WalSegment::from_bytes_lossy(&bytes) else {
                    continue;
                };
                for entry in &segment.entries {
                    if entry.cycle < self.applied_cycle {
                        continue;
                    }
                    if entry.cycle > self.applied_cycle {
                        break; // gap inside a torn segment; retry later
                    }
                    let delta = replay_entry(&mut state.wm, &mut state.matcher, entry);
                    apply_delta(&mut state.conflict, &delta);
                    self.applied_cycle = entry.cycle + 1;
                }
            }
        }

        self.lag = primary_cycle.saturating_sub(self.applied_cycle);
        if let Some(obs) = &self.obs {
            obs.metrics.gauge("replica.lag").set(self.lag as i64);
            obs.metrics
                .gauge("replica.applied_cycle")
                .set(self.applied_cycle as i64);
            obs.metrics.gauge("replica.polls").set(self.polls as i64);
            obs.metrics
                .gauge("replica.segments_fetched")
                .set(self.segments_fetched as i64);
            obs.metrics
                .gauge("replica.bytes_fetched")
                .set(self.bytes_fetched as i64);
            obs.metrics
                .gauge("replica.rebases")
                .set(self.rebases as i64);
        }
        Some(ReplicaStatus {
            applied_cycle: self.applied_cycle,
            primary_cycle,
            lag: self.lag,
            rebased,
        })
    }

    /// Promotes the warm state to a live supervised matcher at
    /// [`Tier::Promoted`]. The standby should be caught up first
    /// ([`StandbyReplica::poll`] until [`StandbyReplica::lag`] is 0);
    /// any remaining lag is lost work, exactly like the paper's §6
    /// fail-stop model.
    ///
    /// # Errors
    ///
    /// [`ops5::Error`] when the standby never warmed (no successful
    /// poll), in which case promotion has nothing to promote.
    pub fn promote(mut self, config: SupervisorConfig) -> Result<Supervisor, Error> {
        let state = self
            .state
            .take()
            .ok_or_else(|| Error::runtime("standby replica has no warm state to promote"))?;
        if let Some(obs) = &self.obs {
            obs.metrics.counter("replica.promotions").inc();
        }
        let mut sup = Supervisor::from_warm(
            &self.program,
            self.network.clone(),
            config,
            state.wm,
            state.matcher,
            state.conflict,
            self.applied_cycle,
        );
        if let Some(obs) = self.obs {
            sup.attach_obs(obs);
        }
        Ok(sup)
    }
}

/// Counters describing one failover run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailoverReport {
    /// The supervised cycle at which the primary was killed and the
    /// standby promoted.
    pub promoted_at: Option<u64>,
    /// Replication lag at promotion time, after the final catch-up
    /// poll (cycles of lost work; 0 when the store was fully shipped).
    pub lag_at_promotion: u64,
    /// Standby polls performed (background + catch-up).
    pub polls: u64,
    /// Chain re-bases the standby performed.
    pub rebases: u64,
}

/// A primary supervisor and a warm standby behind one [`Matcher`],
/// with promotion driven by [`FaultPlan::primary_kill`].
pub struct FailoverPair {
    primary: Option<Supervisor>,
    standby: Option<StandbyReplica>,
    promoted: Option<Supervisor>,
    store: Arc<ReplicationStore>,
    config: SupervisorConfig,
    kill_at: Option<u64>,
    poll_every: u64,
    cycle: u64,
    report: FailoverReport,
}

impl std::fmt::Debug for FailoverPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FailoverPair")
            .field("cycle", &self.cycle)
            .field("kill_at", &self.kill_at)
            .field("promoted", &self.promoted.is_some())
            .finish()
    }
}

impl FailoverPair {
    /// A pair with an in-memory store shared directly between primary
    /// and standby. The plan's engine/cycle faults apply to the
    /// primary as usual; [`FaultPlan::primary_kill`] schedules the
    /// failover.
    ///
    /// # Errors
    ///
    /// Propagates program compilation failures.
    pub fn new(
        program: &Program,
        config: SupervisorConfig,
        replication: ReplicationConfig,
        plan: Option<Arc<FaultPlan>>,
    ) -> Result<Self, Error> {
        let store = Arc::new(ReplicationStore::new(replication));
        let source: Arc<dyn ReplicaSource> = store.clone();
        Self::with_source(program, config, plan, store, source)
    }

    /// A pair whose standby pulls through `source` (e.g. an
    /// [`psm_telemetry::replicate::HttpReplicaSource`] pointed at a
    /// listener serving `store`), while the primary publishes into
    /// `store`. This is how the smoke job exercises the real HTTP
    /// plane.
    ///
    /// # Errors
    ///
    /// Propagates program compilation failures.
    pub fn with_source(
        program: &Program,
        config: SupervisorConfig,
        plan: Option<Arc<FaultPlan>>,
        store: Arc<ReplicationStore>,
        source: Arc<dyn ReplicaSource>,
    ) -> Result<Self, Error> {
        let mut primary = Supervisor::new(program, config)?;
        let kill_at = plan.as_ref().and_then(|p| p.primary_kill);
        primary.set_fault_plan(plan);
        primary.attach_replication(store.clone());
        let standby = StandbyReplica::new(program, primary.network().clone(), source);
        Ok(FailoverPair {
            primary: Some(primary),
            standby: Some(standby),
            promoted: None,
            store,
            config,
            kill_at,
            poll_every: 4,
            cycle: 0,
            report: FailoverReport::default(),
        })
    }

    /// Sets how many supervised cycles pass between background standby
    /// polls (default 4).
    pub fn set_poll_every(&mut self, every: u64) {
        self.poll_every = every.max(1);
    }

    /// Attaches observability to the primary and the standby
    /// (`fault.*`, `engine.*`, `replica.*`).
    pub fn attach_obs(&mut self, obs: Arc<Obs>) {
        if let Some(p) = &mut self.primary {
            p.attach_obs(obs.clone());
        }
        if let Some(s) = &mut self.standby {
            s.attach_obs(obs);
        }
    }

    /// The shared artifact store (for stats and for serving over
    /// HTTP).
    pub fn store(&self) -> &Arc<ReplicationStore> {
        &self.store
    }

    /// The failover counters so far.
    pub fn report(&self) -> FailoverReport {
        let mut r = self.report;
        if let Some(s) = &self.standby {
            r.polls = s.polls();
            r.rebases = s.rebases();
        }
        r
    }

    /// The live supervisor: the promoted standby once failover
    /// happened, the primary before.
    pub fn active(&mut self) -> &mut Supervisor {
        if let Some(p) = self.promoted.as_mut() {
            return p;
        }
        self.primary
            .as_mut()
            .expect("primary alive until promotion")
    }

    /// The live tier ([`Tier::Promoted`] after failover).
    pub fn tier(&self) -> Tier {
        match (&self.promoted, &self.primary) {
            (Some(p), _) => p.tier(),
            (None, Some(p)) => p.tier(),
            (None, None) => unreachable!("either primary or promoted is live"),
        }
    }

    fn kill_and_promote(&mut self, cycle: u64) {
        // The primary dies without processing this batch: drop it.
        // Everything it committed is already in the store.
        self.primary = None;
        let mut standby = self
            .standby
            .take()
            .expect("standby present until promotion");
        // Final catch-up: pull until the shipped frontier is drained
        // (a couple of retries absorb transient transport hiccups).
        let mut status = None;
        for _ in 0..3 {
            status = standby.poll();
            if status.is_some_and(|s| s.lag == 0) {
                break;
            }
        }
        self.report.polls = standby.polls();
        self.report.rebases = standby.rebases();
        self.report.lag_at_promotion = status.map_or(u64::MAX, |s| s.lag);
        self.report.promoted_at = Some(cycle);
        let promoted = standby
            .promote(self.config)
            .expect("standby warmed by catch-up poll");
        self.promoted = Some(promoted);
    }

    fn failover_process(&mut self, wm: &WorkingMemory, changes: &[Change]) -> MatchDelta {
        let cycle = self.cycle;
        self.cycle += 1;
        if self.promoted.is_none() && self.kill_at == Some(cycle) {
            self.kill_and_promote(cycle);
        }
        if self.promoted.is_none() {
            if let Some(s) = &mut self.standby {
                if cycle.is_multiple_of(self.poll_every) {
                    s.poll();
                }
            }
        }
        self.active().process(wm, changes)
    }
}

impl Matcher for FailoverPair {
    fn add_wme(&mut self, wm: &WorkingMemory, id: WmeId) -> MatchDelta {
        self.failover_process(wm, &[Change::Add(id)])
    }

    fn remove_wme(&mut self, wm: &WorkingMemory, id: WmeId) -> MatchDelta {
        self.failover_process(wm, &[Change::Remove(id)])
    }

    fn process(&mut self, wm: &WorkingMemory, changes: &[Change]) -> MatchDelta {
        self.failover_process(wm, changes)
    }

    fn algorithm_name(&self) -> &'static str {
        "failover-pair"
    }
}
