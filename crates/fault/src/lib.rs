//! # psm-fault — fault injection, checkpoint/recovery, degradation
//!
//! The paper's machine (§5) is a 32–64-processor shared-memory
//! multiprocessor; at that component count, processor loss, bus
//! faults, and software failures inside the match engine stop being
//! hypothetical. This crate adds the robustness layer the paper leaves
//! implicit, built from three pieces:
//!
//! * **[`FaultPlan`]** — a deterministic, seeded fault schedule
//!   spanning the real parallel engine (dropped tasks, worker panics,
//!   poisoned locks via [`psm_core::FaultInjector`]), supervisor-level
//!   transient faults, and the §6 discrete-event simulator's machine
//!   faults (processor kills, bus stalls via [`psm_sim::SimFaults`]).
//!   Same seed ⇒ same faults, every run, every platform.
//! * **[`Checkpoint`] + [`Wal`]** — versioned byte-level snapshots of
//!   working memory, Rete memories, and conflict set, plus a
//!   write-ahead log of committed change batches. Recovery = restore
//!   snapshot + replay tail, and reproduces the pre-fault state
//!   *byte-for-byte* (same WME ids, same time tags, same memory
//!   contents) — asserted, not assumed, by the tests.
//! * **[`Supervisor`]** — a drop-in [`ops5::Matcher`] that runs the
//!   matcher ladder parallel → sequential → naive with per-cycle
//!   deadlines, bounded retry-with-backoff on transient faults,
//!   checkpoint/WAL recovery on engine faults, and monotonic graceful
//!   degradation. Every fault, retry, fallback, and recovery is
//!   counted in a [`FaultReport`] and published to `psm-obs`.
//!
//! On top of those sits the replication plane:
//!
//! * **[`CheckpointChain`]** — delta checkpoints (`PSMD`): each
//!   checkpoint is stored as a block-level binary diff against its
//!   parent, with periodic full-snapshot anchors, and every link
//!   CRC-validated so a chain replays back to the exact (byte-equal)
//!   full checkpoint.
//! * **[`SegmentedWal`]** — the WAL split into bounded, CRC-framed
//!   segments (`PSML` v2) with a manifest; torn tails truncate to the
//!   longest valid prefix on open, and segments fully covered by a
//!   checkpoint are garbage-collected.
//! * **[`ReplicationStore`] + [`StandbyReplica`] + [`FailoverPair`]**
//!   — a primary publishes chain + segments (optionally over
//!   `psm-telemetry`'s `/replicate/*` endpoints); a pull-based standby
//!   streams them into warm state and can be promoted to a live
//!   [`Supervisor`] after a fail-stop primary kill, byte-exactly.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod checkpoint;
pub mod delta;
pub mod plan;
pub mod replica;
pub mod segment;
pub mod supervisor;
pub mod wal;

pub use checkpoint::Checkpoint;
pub use delta::{ChainArtifact, CheckpointChain, DeltaCheckpoint};
pub use plan::{CycleFault, EngineFault, FaultPlan};
pub use replica::{
    FailoverPair, FailoverReport, ReplicaStatus, ReplicationConfig, ReplicationStats,
    ReplicationStore, StandbyReplica,
};
pub use segment::{crc32, SegmentMeta, SegmentedWal, WalSegment};
pub use supervisor::{FaultReport, RecoveryDrill, Supervisor, SupervisorConfig, Tier};
pub use wal::{Wal, WalChange, WalEntry};

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use ops5::Matcher;
    use psm_core::FaultAction;
    use rete::ReteMatcher;
    use workloads::{GeneratedWorkload, Preset, WorkloadDriver};

    use super::*;

    /// Wraps a matcher so every delta folds into a conflict-set
    /// accumulator — the reference against which the supervisor's
    /// recovered conflict set is compared.
    struct Collecting<'a> {
        inner: &'a mut ReteMatcher,
        conflict: &'a mut std::collections::HashSet<ops5::Instantiation>,
    }

    impl Collecting<'_> {
        fn fold(&mut self, d: ops5::MatchDelta) -> ops5::MatchDelta {
            for i in &d.removed {
                self.conflict.remove(i);
            }
            for i in &d.added {
                self.conflict.insert(i.clone());
            }
            d
        }
    }

    impl Matcher for Collecting<'_> {
        fn add_wme(&mut self, wm: &ops5::WorkingMemory, id: ops5::WmeId) -> ops5::MatchDelta {
            let d = self.inner.add_wme(wm, id);
            self.fold(d)
        }
        fn remove_wme(&mut self, wm: &ops5::WorkingMemory, id: ops5::WmeId) -> ops5::MatchDelta {
            let d = self.inner.remove_wme(wm, id);
            self.fold(d)
        }
        fn algorithm_name(&self) -> &'static str {
            "collecting"
        }
    }

    fn drive_reference(
        workload: &GeneratedWorkload,
        seed: u64,
        cycles: u64,
        network: &Arc<rete::Network>,
    ) -> (ReteMatcher, Vec<ops5::Instantiation>) {
        let mut driver = WorkloadDriver::new(workload.clone(), seed);
        let mut matcher = ReteMatcher::from_network(network.clone());
        let mut conflict = std::collections::HashSet::new();
        let mut collecting = Collecting {
            inner: &mut matcher,
            conflict: &mut conflict,
        };
        driver.init(&mut collecting);
        for _ in 0..cycles {
            let batch = driver.next_batch();
            let delta = collecting.inner.process(driver.working_memory(), &batch);
            collecting.fold(delta);
            driver.commit_batch(&batch);
        }
        let mut sorted: Vec<_> = conflict.into_iter().collect();
        sorted.sort_by(|a, b| (a.production, &a.wmes).cmp(&(b.production, &b.wmes)));
        (matcher, sorted)
    }

    fn run_supervised(
        workload: &GeneratedWorkload,
        seed: u64,
        cycles: u64,
        plan: Option<Arc<FaultPlan>>,
        config: SupervisorConfig,
    ) -> Supervisor {
        let mut driver = WorkloadDriver::new(workload.clone(), seed);
        let mut sup = Supervisor::new(&workload.program, config).expect("compiles");
        sup.set_fault_plan(plan);
        driver.init(&mut sup);
        for _ in 0..cycles {
            let batch = driver.next_batch();
            sup.process(driver.working_memory(), &batch);
            driver.commit_batch(&batch);
        }
        sup
    }

    fn small_workload() -> GeneratedWorkload {
        GeneratedWorkload::generate(Preset::EpSoar.spec_small()).expect("generates")
    }

    fn fast_config() -> SupervisorConfig {
        SupervisorConfig {
            threads: 2,
            backoff: std::time::Duration::from_micros(10),
            checkpoint_every: 4,
            ..SupervisorConfig::default()
        }
    }

    #[test]
    fn fault_free_supervision_matches_the_reference_byte_for_byte() {
        let w = small_workload();
        let mut sup = run_supervised(&w, 11, 10, None, fast_config());
        assert_eq!(sup.tier(), Tier::Parallel, "nothing degraded");
        let (reference, conflict) = drive_reference(&w, 11, 10, &sup.network().clone());
        assert_eq!(sup.conflict_set(), conflict);
        assert_eq!(
            sup.committed_snapshot().as_bytes(),
            reference.snapshot().as_bytes(),
            "checkpoint + WAL replay reproduces the live sequential state"
        );
        assert!(sup.report().checkpoints >= 1, "checkpoint_every=4 fired");
    }

    #[test]
    fn engine_fault_recovers_to_the_fault_free_state() {
        let w = small_workload();
        for action in [
            FaultAction::DropTask,
            FaultAction::PanicWorker,
            FaultAction::PoisonLock,
        ] {
            // Init adds run one batch each; batch k runs phases 2k-1
            // (remove) and 2k (add). Phase 10 = the add phase of the
            // 5th batch, which always has at least one task.
            let plan = Arc::new(FaultPlan::new(5).with_engine_fault(10, 0, action));
            let mut sup = run_supervised(&w, 11, 10, Some(plan), fast_config());
            let report = sup.report();
            assert_eq!(sup.tier(), Tier::Sequential, "{action:?} degrades");
            assert!(report.engine_faults >= 1, "{action:?} fired");
            assert_eq!(report.recoveries, 1);
            assert_eq!(report.fallbacks, 1);
            let expect_respawns = u64::from(action != FaultAction::DropTask);
            assert_eq!(
                report.worker_respawns, expect_respawns,
                "{action:?}: a killed worker is respawned at the phase barrier \
                 and the count survives the engine's retirement"
            );
            let (reference, conflict) = drive_reference(&w, 11, 10, &sup.network().clone());
            assert_eq!(sup.conflict_set(), conflict, "{action:?}");
            assert_eq!(
                sup.committed_snapshot().as_bytes(),
                reference.snapshot().as_bytes(),
                "{action:?}: recovery is byte-exact"
            );
        }
    }

    #[test]
    fn transient_faults_retry_then_degrade_to_naive() {
        let w = small_workload();
        // Cycle 3: 2 fails → retries absorb them at the parallel tier.
        // Cycle 5: 6 fails → exhausts retries twice → parallel →
        // sequential → naive.
        let plan = Arc::new(
            FaultPlan::new(0)
                .with_cycle_fault(3, 2)
                .with_cycle_fault(5, 6),
        );
        let mut sup = run_supervised(&w, 11, 8, Some(plan), fast_config());
        let report = sup.report();
        assert_eq!(sup.tier(), Tier::Naive);
        assert!(
            report.transient_faults >= 8 - 2,
            "naive floor stops the count"
        );
        assert!(report.retries >= 4);
        assert_eq!(report.fallbacks, 2, "two tier drops");
        assert_eq!(report.recoveries, 0, "no engine fault, no recovery");
        let (reference, conflict) = drive_reference(&w, 11, 8, &sup.network().clone());
        assert_eq!(sup.conflict_set(), conflict, "naive tier still exact");
        assert_eq!(
            sup.committed_snapshot().as_bytes(),
            reference.snapshot().as_bytes(),
            "WAL replay covers batches matched by the naive tier too"
        );
    }

    #[test]
    fn same_seed_same_faults_same_recovered_state() {
        let w = small_workload();
        let mk = || {
            let plan = Arc::new(FaultPlan::randomized(77, 40, 0.3));
            run_supervised(&w, 13, 12, Some(plan), fast_config())
        };
        let mut a = mk();
        let mut b = mk();
        // Poison-recovery counts depend on which worker touched the
        // poisoned lock first, so they are the one timing-dependent
        // counter; everything else must match exactly.
        let normalize = |mut r: FaultReport| {
            r.poison_recoveries = 0;
            r
        };
        assert_eq!(
            normalize(a.report()),
            normalize(b.report()),
            "identical fault schedule"
        );
        assert_eq!(a.tier(), b.tier());
        assert_eq!(a.conflict_set(), b.conflict_set());
        assert_eq!(
            a.committed_snapshot().as_bytes(),
            b.committed_snapshot().as_bytes()
        );
        assert_eq!(a.committed_wm_bytes(), b.committed_wm_bytes());
    }

    #[test]
    fn deadline_miss_degrades_but_keeps_the_delta() {
        let w = small_workload();
        let config = SupervisorConfig {
            deadline: std::time::Duration::ZERO, // every cycle misses
            ..fast_config()
        };
        let mut sup = run_supervised(&w, 11, 6, None, config);
        let report = sup.report();
        assert!(report.deadline_misses >= 1);
        assert_eq!(sup.tier(), Tier::Sequential, "left the parallel tier");
        assert_eq!(report.recoveries, 0, "no state was corrupt");
        let (reference, conflict) = drive_reference(&w, 11, 6, &sup.network().clone());
        assert_eq!(sup.conflict_set(), conflict);
        assert_eq!(
            sup.committed_snapshot().as_bytes(),
            reference.snapshot().as_bytes()
        );
    }
}
