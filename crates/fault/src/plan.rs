//! Deterministic fault schedules.
//!
//! A [`FaultPlan`] is the single source of truth for *what goes wrong
//! and when*, across all three layers that can fail:
//!
//! * **engine faults** — injected into the real parallel matcher's
//!   work-stealing loop via [`psm_core::FaultInjector`]: a task dropped
//!   on the floor, a worker panic, or a poisoned node lock;
//! * **cycle faults** — transient failures observed by the supervisor
//!   at recognize–act-cycle granularity (a match attempt that must be
//!   retried);
//! * **simulated-machine faults** — fail-stop processor losses and bus
//!   stalls for the §6 discrete-event simulator
//!   ([`psm_sim::SimFaults`]).
//!
//! Plans are plain data seeded through [`psm_obs::Rng64`]
//! (SplitMix64): the same seed produces the same schedule on every
//! platform and every run, which is what makes the recovery tests'
//! "same seed ⇒ identical fault schedule ⇒ identical recovered state"
//! assertion possible.

use psm_core::{FaultAction, FaultInjector};
use psm_obs::Rng64;
use psm_sim::SimFaults;

/// One injected fault inside the parallel engine, addressed by the
/// engine's deterministic `(phase, task)` coordinates: `phase` is the
/// global barrier-phase sequence number (two phases — remove, add —
/// per change batch) and `seq` is the order in which workers claimed
/// tasks within that phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineFault {
    /// Global phase sequence number (1-based; batch `k` runs phases
    /// `2k-1` and `2k`).
    pub phase: u64,
    /// Task claim index within the phase (0-based).
    pub seq: u64,
    /// What happens to that task's worker.
    pub action: FaultAction,
}

/// A transient fault at recognize–act-cycle granularity: the first
/// `fails` match attempts for `cycle` fail and must be retried (or,
/// past the retry budget, degrade the supervisor to a simpler tier).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleFault {
    /// Supervised cycle index (0-based, counting every processed
    /// batch including initial working-memory load).
    pub cycle: u64,
    /// Consecutive attempts that fail before the cycle succeeds.
    pub fails: u32,
}

/// A deterministic, seeded fault schedule. See the module docs for the
/// three fault layers. Construct with [`FaultPlan::new`] plus the
/// builder methods for targeted faults, or [`FaultPlan::randomized`]
/// for seeded chaos.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The seed the plan was derived from (recorded for reports).
    pub seed: u64,
    /// Faults injected into the parallel engine.
    pub engine: Vec<EngineFault>,
    /// Transient cycle-level faults seen by the supervisor.
    pub cycles: Vec<CycleFault>,
    /// Faults for the simulated §6 machine.
    pub sim: SimFaults,
    /// Fail-stop primary kill: the supervised cycle at which a
    /// [`crate::FailoverPair`] drops its primary on the floor and
    /// promotes the warm standby. The killed primary never processes
    /// this cycle's batch. `None` disables failover.
    pub primary_kill: Option<u64>,
}

impl FaultPlan {
    /// An empty plan with a recorded seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// True when nothing is scheduled to fail.
    pub fn is_empty(&self) -> bool {
        self.engine.is_empty()
            && self.cycles.is_empty()
            && self.sim.is_empty()
            && self.primary_kill.is_none()
    }

    /// Adds an engine fault (builder style).
    pub fn with_engine_fault(mut self, phase: u64, seq: u64, action: FaultAction) -> Self {
        self.engine.push(EngineFault { phase, seq, action });
        self
    }

    /// Adds a transient cycle fault (builder style).
    pub fn with_cycle_fault(mut self, cycle: u64, fails: u32) -> Self {
        self.cycles.push(CycleFault { cycle, fails });
        self
    }

    /// Replaces the simulated-machine fault schedule (builder style).
    pub fn with_sim(mut self, sim: SimFaults) -> Self {
        self.sim = sim;
        self
    }

    /// Schedules a fail-stop primary kill at `cycle` (builder style).
    pub fn with_primary_kill(mut self, cycle: u64) -> Self {
        self.primary_kill = Some(cycle);
        self
    }

    /// A seeded chaos schedule over `cycles` supervised cycles: each
    /// cycle draws a fault with probability `rate`, choosing uniformly
    /// between an engine fault (random action, early task of that
    /// cycle's phases), a transient cycle fault (1–2 failed attempts),
    /// and a simulated-machine fault (processor kill or bus stall at a
    /// nominal `cycle × 1000 µs` clock). Equal seeds yield equal plans.
    pub fn randomized(seed: u64, cycles: u64, rate: f64) -> Self {
        let mut rng = Rng64::new(seed);
        let mut plan = FaultPlan::new(seed);
        for cycle in 0..cycles {
            if !rng.gen_bool(rate) {
                continue;
            }
            match rng.gen_range(0..4u32) {
                0 => {
                    let action = *rng.choose(&[
                        FaultAction::DropTask,
                        FaultAction::PanicWorker,
                        FaultAction::PoisonLock,
                    ]);
                    plan.engine.push(EngineFault {
                        // Batch k (0-based cycle k) runs phases 2k+1, 2k+2.
                        phase: 2 * cycle + 1 + rng.gen_range(0..2u64),
                        seq: rng.gen_range(0..4u64),
                        action,
                    });
                }
                1 => plan.cycles.push(CycleFault {
                    cycle,
                    fails: rng.gen_range(1..=2u32),
                }),
                2 => {
                    let proc = rng.gen_range(0..32usize);
                    plan.sim.kills.push(psm_sim::ProcessorKill {
                        proc,
                        at_us: cycle as f64 * 1000.0,
                    });
                }
                _ => {
                    plan.sim.stalls.push(psm_sim::BusStall {
                        from_us: cycle as f64 * 1000.0,
                        dur_us: rng.gen_range(50..500u64) as f64,
                    });
                }
            }
        }
        plan
    }

    /// Total failed attempts scheduled for `cycle`.
    pub fn fails_for_cycle(&self, cycle: u64) -> u32 {
        self.cycles
            .iter()
            .filter(|c| c.cycle == cycle)
            .map(|c| c.fails)
            .sum()
    }
}

impl FaultInjector for FaultPlan {
    fn on_task(&self, phase: u64, seq: u64, _worker: usize) -> FaultAction {
        self.engine
            .iter()
            .find(|f| f.phase == phase && f.seq == seq)
            .map(|f| f.action)
            .unwrap_or(FaultAction::None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn randomized_plans_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::randomized(42, 50, 0.4);
        let b = FaultPlan::randomized(42, 50, 0.4);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "rate 0.4 over 50 cycles draws something");
        let c = FaultPlan::randomized(43, 50, 0.4);
        assert_ne!(a, c, "different seeds diverge");
        assert!(FaultPlan::randomized(7, 50, 0.0).is_empty());
    }

    #[test]
    fn injector_addresses_by_phase_and_seq() {
        let plan = FaultPlan::new(0).with_engine_fault(3, 1, FaultAction::PanicWorker);
        assert_eq!(plan.on_task(3, 1, 9), FaultAction::PanicWorker);
        assert_eq!(plan.on_task(3, 0, 9), FaultAction::None);
        assert_eq!(plan.on_task(4, 1, 9), FaultAction::None);
    }

    #[test]
    fn cycle_fails_accumulate() {
        let plan = FaultPlan::new(0)
            .with_cycle_fault(5, 1)
            .with_cycle_fault(5, 2)
            .with_cycle_fault(6, 1);
        assert_eq!(plan.fails_for_cycle(5), 3);
        assert_eq!(plan.fails_for_cycle(6), 1);
        assert_eq!(plan.fails_for_cycle(7), 0);
    }
}
