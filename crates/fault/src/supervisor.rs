//! The supervised match cycle: detection, recovery, degradation.
//!
//! [`Supervisor`] wraps the whole matcher ladder behind the ordinary
//! [`ops5::Matcher`] trait, so the workload driver and interpreter use
//! it unchanged. Internally it runs one of three tiers:
//!
//! 1. **Parallel** — the real multicore [`psm_core::ParallelReteMatcher`]
//!    (fastest, and the only tier the fault plane can corrupt);
//! 2. **Sequential** — the reference [`rete::ReteMatcher`];
//! 3. **Naive** — the stateless [`baselines::NaiveMatcher`] (slowest,
//!    nothing to corrupt: it re-derives the conflict set from live
//!    working memory every cycle).
//!
//! Every committed batch is appended to a [`Wal`]; every
//! `checkpoint_every` cycles the committed state is captured as a
//! [`Checkpoint`]. When the parallel engine reports an injected fault
//! (dropped task, worker panic, poisoned lock — see
//! [`psm_core::FaultInjector`]) the possibly-corrupt delta is
//! discarded, the engine is retired, and the supervisor **recovers**:
//! restore the checkpoint, replay the WAL tail through a fresh
//! sequential matcher, then re-run the interrupted batch. Because
//! replay reproduces the exact pre-fault state (same WME ids, same
//! time tags, same memories), the recovered matcher's snapshot is
//! byte-identical to a never-faulted run — the tests assert exactly
//! that.
//!
//! Transient cycle-level faults (from the [`FaultPlan`]) are retried
//! with bounded, jittered backoff (the jitter is seeded from the fault
//! plan so chaos runs stay reproducible — a fixed backoff can lockstep
//! with a periodic fault source); past `max_retries` the supervisor
//! degrades one tier. A per-cycle deadline miss likewise degrades out
//! of the parallel tier, but keeps the (valid) delta. Degradation is
//! monotonic: parallel → sequential → naive, never back up.
//!
//! A fourth tier exists only after failover: [`Tier::Promoted`] is a
//! warm standby ([`crate::StandbyReplica`]) that took over after a
//! primary kill. It runs the sequential matcher it warmed from the
//! replicated checkpoint chain + WAL segments, and degrades to naive
//! like the sequential tier does. When a [`crate::ReplicationStore`]
//! is attached, every committed batch and every checkpoint is
//! published to it synchronously, which is what makes the standby's
//! catch-up byte-exact.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use baselines::NaiveMatcher;
use ops5::{
    Change, Error, Instantiation, MatchDelta, Matcher, Program, Wme, WmeId, WorkingMemory,
    WriteSanitizer,
};
use psm_core::{FaultInjector, ParallelReteMatcher};
use psm_obs::{Obs, Rng64};
use rete::{Network, ReteMatcher, ReteSnapshot};

use crate::checkpoint::Checkpoint;
use crate::plan::FaultPlan;
use crate::replica::ReplicationStore;
use crate::wal::{Wal, WalChange, WalEntry};

/// The active matcher tier, ordered fastest-and-most-fragile first.
/// `Promoted` is declared last so the numeric gauge values of the
/// original ladder stay stable (0/1/2); it behaves like `Sequential`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Node-activation-parallel Rete on real threads.
    Parallel,
    /// Sequential Rete (the reference implementation).
    Sequential,
    /// The stateless naive matcher: nothing saved, nothing to corrupt.
    Naive,
    /// A promoted warm standby: sequential Rete warmed from replicated
    /// checkpoints + WAL segments after a primary kill.
    Promoted,
}

impl Tier {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Parallel => "parallel",
            Tier::Sequential => "sequential",
            Tier::Naive => "naive",
            Tier::Promoted => "promoted",
        }
    }

    /// True for the tiers backed by a live sequential [`ReteMatcher`]
    /// (their snapshot *is* the committed state).
    fn sequential_backed(self) -> bool {
        matches!(self, Tier::Sequential | Tier::Promoted)
    }
}

/// Supervision policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Worker threads for the parallel tier.
    pub threads: usize,
    /// Per-cycle deadline; an attempt exceeding it counts a miss and
    /// degrades out of the parallel tier. The default is effectively
    /// "off" for test-sized workloads.
    pub deadline: Duration,
    /// Transient-fault retries per cycle before degrading a tier.
    pub max_retries: u32,
    /// Base backoff between retries (doubles per attempt, capped at
    /// 8×).
    pub backoff: Duration,
    /// Cycles between checkpoints (the WAL is truncated at each).
    pub checkpoint_every: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            threads: 4,
            deadline: Duration::from_secs(30),
            max_retries: 2,
            backoff: Duration::from_micros(200),
            checkpoint_every: 8,
        }
    }
}

/// Counters describing everything the supervisor survived.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Faults the parallel engine actually injected (dropped tasks,
    /// worker panics, lock poisonings).
    pub engine_faults: u64,
    /// Transient cycle-level faults observed.
    pub transient_faults: u64,
    /// Retry attempts performed.
    pub retries: u64,
    /// Tier degradations (parallel→sequential, sequential→naive).
    pub fallbacks: u64,
    /// Checkpoint+WAL recoveries performed after engine faults.
    pub recoveries: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// WAL entries replayed (during recoveries and checkpoint
    /// rebuilds).
    pub wal_replayed: u64,
    /// Cycles whose match attempt exceeded the deadline.
    pub deadline_misses: u64,
    /// Poisoned locks transparently recovered inside the engine.
    pub poison_recoveries: u64,
    /// Worker threads the engine's persistent pool replaced after a
    /// panic (injected or genuine) at a phase barrier.
    pub worker_respawns: u64,
}

/// What a [`Supervisor::recovery_drill`] measured: the wall-clock cost
/// of rebuilding the committed state from the last checkpoint plus WAL
/// replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryDrill {
    /// Wall-clock time for restore + replay + snapshot.
    pub elapsed: Duration,
    /// WAL entries replayed during the drill.
    pub wal_replayed: u64,
    /// Size of the rebuilt sequential snapshot, in bytes.
    pub snapshot_bytes: usize,
}

/// The supervised matcher. See the module docs for the protocol.
pub struct Supervisor {
    program: Program,
    network: Arc<Network>,
    config: SupervisorConfig,
    plan: Option<Arc<FaultPlan>>,
    obs: Option<Arc<Obs>>,
    tier: Tier,
    parallel: Option<ParallelReteMatcher>,
    sequential: Option<ReteMatcher>,
    naive: Option<NaiveMatcher>,
    /// Replica of the caller's working memory, synced from the change
    /// stream; checkpoints snapshot this, so it must see every
    /// mutation (which it does as long as all mutations flow through
    /// `process`, as the driver and interpreter guarantee).
    shadow: WorkingMemory,
    conflict: HashSet<Instantiation>,
    checkpoint: Checkpoint,
    wal: Wal,
    cycle: u64,
    report: FaultReport,
    /// Debug write-set sanitizer; see [`Supervisor::attach_sanitizer`].
    sanitizer: Option<Arc<WriteSanitizer>>,
    /// Retry-backoff jitter, re-seeded from the fault plan so chaos
    /// runs stay reproducible.
    jitter: Rng64,
    /// Replication sink; see [`Supervisor::attach_replication`].
    replication: Option<Arc<ReplicationStore>>,
}

impl Supervisor {
    /// Compiles `program` and starts supervision at the parallel tier
    /// with a genesis checkpoint.
    pub fn new(program: &Program, config: SupervisorConfig) -> Result<Self, Error> {
        let network = Arc::new(Network::compile(program)?);
        let parallel = ParallelReteMatcher::from_network(network.clone(), config.threads);
        let genesis = ReteMatcher::from_network(network.clone()).snapshot();
        Ok(Supervisor {
            program: program.clone(),
            network,
            config,
            plan: None,
            obs: None,
            tier: Tier::Parallel,
            parallel: Some(parallel),
            sequential: None,
            naive: None,
            shadow: WorkingMemory::new(),
            conflict: HashSet::new(),
            checkpoint: Checkpoint::genesis(genesis),
            wal: Wal::new(),
            cycle: 0,
            report: FaultReport::default(),
            sanitizer: None,
            jitter: Rng64::new(0),
            replication: None,
        })
    }

    /// Builds a supervisor directly on warm state — the promotion path
    /// out of [`crate::StandbyReplica`]. Starts at [`Tier::Promoted`]
    /// with the warm sequential matcher live, a checkpoint snapshotted
    /// from the warm state (so local recovery has a base), and the
    /// supervised cycle counter continuing at `cycle`.
    pub(crate) fn from_warm(
        program: &Program,
        network: Arc<Network>,
        config: SupervisorConfig,
        wm: WorkingMemory,
        matcher: ReteMatcher,
        conflict: HashSet<Instantiation>,
        cycle: u64,
    ) -> Self {
        let mut sorted: Vec<Instantiation> = conflict.iter().cloned().collect();
        sorted.sort_by(|a, b| (a.production, &a.wmes).cmp(&(b.production, &b.wmes)));
        let checkpoint = Checkpoint {
            cycle,
            wm: wm.snapshot_bytes(),
            rete: matcher.snapshot(),
            conflict: sorted,
        };
        Supervisor {
            program: program.clone(),
            network,
            config,
            plan: None,
            obs: None,
            tier: Tier::Promoted,
            parallel: None,
            sequential: Some(matcher),
            naive: None,
            shadow: wm,
            conflict,
            checkpoint,
            wal: Wal::new(),
            cycle,
            report: FaultReport::default(),
            sanitizer: None,
            jitter: Rng64::new(0),
            replication: None,
        }
    }

    /// Attaches a debug [`WriteSanitizer`]: every supervised batch is
    /// checked against the firing production's static write set before
    /// the attempt loop runs, so the check holds across retries, tier
    /// falls, and recovery replays. Share the same `Arc` with the
    /// interpreter's `attach_sanitizer` — it owns the firing context;
    /// batches seen outside a firing are not checked.
    pub fn attach_sanitizer(&mut self, sanitizer: Arc<WriteSanitizer>) {
        self.sanitizer = Some(sanitizer);
    }

    /// Installs (or clears) the fault plan. Engine faults reach the
    /// parallel matcher through its injector hook, and the retry
    /// jitter re-seeds from the plan's seed so equal plans produce
    /// equal backoff schedules.
    pub fn set_fault_plan(&mut self, plan: Option<Arc<FaultPlan>>) {
        if let Some(p) = &mut self.parallel {
            p.set_fault_injector(plan.clone().map(|p| p as Arc<dyn FaultInjector>));
        }
        self.jitter = Rng64::new(plan.as_ref().map_or(0, |p| p.seed));
        self.plan = plan;
    }

    /// Attaches a replication sink: the current checkpoint is
    /// published immediately as the chain's anchor, and from here on
    /// every committed batch and every checkpoint is published
    /// synchronously — a standby pulling the store can always catch up
    /// to the committed frontier, byte-exactly.
    pub fn attach_replication(&mut self, store: Arc<ReplicationStore>) {
        store.publish_checkpoint(&self.checkpoint);
        for entry in self.wal.entries() {
            store.publish_entry(entry);
        }
        self.replication = Some(store);
    }

    /// Attaches an observability handle; fault/retry/fallback/recovery
    /// counters are published under `fault.*`, and the parallel tier's
    /// engine counters under `engine.*`.
    pub fn attach_obs(&mut self, obs: Arc<Obs>) {
        if let Some(p) = &mut self.parallel {
            p.attach_obs(obs.clone());
        }
        if let Some(m) = &mut self.sequential {
            m.attach_obs(obs.clone());
        }
        self.obs = Some(obs);
    }

    /// The compiled network (shared with every Rete tier; reference
    /// runs for byte-for-byte audits should build on this).
    pub fn network(&self) -> &Arc<Network> {
        &self.network
    }

    /// The currently active tier.
    pub fn tier(&self) -> Tier {
        self.tier
    }

    /// The conflict set, sorted canonically.
    pub fn conflict_set(&self) -> Vec<Instantiation> {
        let mut v: Vec<Instantiation> = self.conflict.iter().cloned().collect();
        v.sort_by(|a, b| (a.production, &a.wmes).cmp(&(b.production, &b.wmes)));
        v
    }

    /// Fault counters so far (includes the live engine's poison-
    /// recovery count).
    pub fn report(&self) -> FaultReport {
        let mut r = self.report;
        if let Some(p) = &self.parallel {
            r.poison_recoveries += p.poison_recoveries();
            r.worker_respawns += p.pool_stats().respawns;
        }
        r
    }

    /// Supervised cycles processed.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// WAL entries accumulated since the last checkpoint.
    pub fn wal_len(&self) -> usize {
        self.wal.len()
    }

    /// The live WAL (entries since the last checkpoint).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// Times a full checkpoint-restore + WAL-replay rebuild without
    /// mutating supervisor state — the recovery-cost probe behind the
    /// `fault_report` bench's recovery-time column.
    pub fn recovery_drill(&self) -> RecoveryDrill {
        let started = Instant::now();
        let (m, _conflict, replayed) = self.rebuild_sequential();
        let snapshot_bytes = m.snapshot().as_bytes().len();
        RecoveryDrill {
            elapsed: started.elapsed(),
            wal_replayed: replayed,
            snapshot_bytes,
        }
    }

    /// The last checkpoint (its `cycle` field says how much of history
    /// it covers).
    pub fn last_checkpoint(&self) -> &Checkpoint {
        &self.checkpoint
    }

    /// A sequential-Rete snapshot of the committed state, rebuilt from
    /// checkpoint + WAL replay (or taken live at the sequential tier).
    /// Byte-identical to the snapshot of a fault-free [`ReteMatcher`]
    /// on [`Supervisor::network`] fed the same batches — the
    /// recovery-exactness audit hangs off this.
    pub fn committed_snapshot(&mut self) -> ReteSnapshot {
        if self.tier.sequential_backed() {
            return self
                .sequential
                .as_ref()
                .expect("sequential tier")
                .snapshot();
        }
        let (m, _conflict, replayed) = self.rebuild_sequential();
        self.report.wal_replayed += replayed;
        m.snapshot()
    }

    /// A canonical snapshot of the shadow working memory.
    pub fn committed_wm_bytes(&self) -> Vec<u8> {
        self.shadow.snapshot_bytes()
    }

    fn count(&self, name: &str) {
        if let Some(obs) = &self.obs {
            obs.metrics.counter(name).inc();
        }
    }

    fn emit(&self, name: &str, tier: Tier, cycle: u64) {
        if let Some(obs) = &self.obs {
            obs.events.emit(
                name,
                &[
                    ("tier", tier.name().into()),
                    ("cycle", (cycle as i64).into()),
                ],
            );
        }
    }

    /// Restores the last checkpoint and replays the WAL tail through a
    /// fresh sequential matcher. Returns the matcher, the conflict set
    /// at the replayed frontier, and the number of entries replayed.
    fn rebuild_sequential(&self) -> (ReteMatcher, HashSet<Instantiation>, u64) {
        let mut m = ReteMatcher::restore(self.network.clone(), &self.checkpoint.rete)
            .expect("checkpoint snapshot was taken on this network");
        let mut wm = WorkingMemory::restore_snapshot(&self.checkpoint.wm)
            .expect("checkpoint working-memory bytes are valid");
        let mut conflict: HashSet<Instantiation> =
            self.checkpoint.conflict.iter().cloned().collect();
        let mut replayed = 0u64;
        for entry in self.wal.entries() {
            replayed += 1;
            let delta = replay_entry(&mut wm, &mut m, entry);
            apply_delta(&mut conflict, &delta);
        }
        (m, conflict, replayed)
    }

    /// Retires the parallel engine (folding its counters into the
    /// report) and installs a recovered sequential matcher.
    fn fall_back_to_sequential(&mut self, recovery: bool) {
        if let Some(p) = self.parallel.take() {
            self.report.poison_recoveries += p.poison_recoveries();
            self.report.worker_respawns += p.pool_stats().respawns;
        }
        let (mut m, conflict, replayed) = self.rebuild_sequential();
        // Keep the telemetry plane alive across degradation: the
        // recovered matcher inherits the flight recorder and per-node
        // profiler, so `/profile` and `/explain` keep answering at the
        // sequential tier.
        if let Some(obs) = &self.obs {
            m.attach_obs(obs.clone());
        }
        debug_assert_eq!(
            {
                let mut v: Vec<_> = conflict.iter().cloned().collect();
                v.sort_by(|a, b| (a.production, &a.wmes).cmp(&(b.production, &b.wmes)));
                v
            },
            self.conflict_set(),
            "replay must reproduce the committed conflict set"
        );
        self.conflict = conflict;
        self.sequential = Some(m);
        self.tier = Tier::Sequential;
        self.report.fallbacks += 1;
        self.report.wal_replayed += replayed;
        self.count("fault.fallbacks");
        if recovery {
            self.report.recoveries += 1;
            self.count("fault.recoveries");
        }
    }

    /// Degrades sequential → naive: the naive matcher re-derives all
    /// state from live WMEs, so it is seeded with the committed
    /// working memory (everything live in the shadow except the
    /// current batch's assertions).
    fn fall_back_to_naive(&mut self, batch_adds: &HashSet<WmeId>) {
        self.sequential = None;
        let mut naive = NaiveMatcher::new(&self.program);
        let live: Vec<WmeId> = self
            .shadow
            .iter()
            .map(|(id, _, _)| id)
            .filter(|id| !batch_adds.contains(id))
            .collect();
        let changes: Vec<Change> = live.into_iter().map(Change::Add).collect();
        let mut seeded = naive.process(&self.shadow, &changes);
        seeded.canonicalize();
        debug_assert_eq!(
            seeded.added,
            self.conflict_set(),
            "the naive matcher re-derives the committed conflict set"
        );
        self.naive = Some(naive);
        self.tier = Tier::Naive;
        self.report.fallbacks += 1;
        self.count("fault.fallbacks");
    }

    fn degrade_one_tier(&mut self, batch_adds: &HashSet<WmeId>, cycle: u64) {
        match self.tier {
            Tier::Parallel => {
                self.emit("fault.fallback", Tier::Sequential, cycle);
                self.fall_back_to_sequential(false);
            }
            Tier::Sequential | Tier::Promoted => {
                self.emit("fault.fallback", Tier::Naive, cycle);
                self.fall_back_to_naive(batch_adds);
            }
            Tier::Naive => {} // Already at the floor; keep trying.
        }
    }

    /// One match attempt on the active tier. `Err(n)` means the
    /// parallel engine reported `n` injected faults (or panicked) and
    /// its delta was discarded.
    fn try_match(&mut self, wm: &WorkingMemory, changes: &[Change]) -> Result<MatchDelta, u64> {
        match self.tier {
            Tier::Parallel => {
                let m = self.parallel.as_mut().expect("parallel tier has an engine");
                let outcome = catch_unwind(AssertUnwindSafe(|| m.process(wm, changes)));
                let faults = m.take_faults();
                match outcome {
                    Ok(delta) if faults == 0 => Ok(delta),
                    Ok(_) => Err(faults),
                    Err(_) => Err(faults.max(1)),
                }
            }
            Tier::Sequential | Tier::Promoted => Ok(self
                .sequential
                .as_mut()
                .expect("sequential tier has a matcher")
                .process(wm, changes)),
            Tier::Naive => Ok(self
                .naive
                .as_mut()
                .expect("naive tier has a matcher")
                .process(wm, changes)),
        }
    }

    fn take_checkpoint(&mut self) {
        // At the sequential tier the live matcher *is* the committed
        // state; otherwise rebuild it by snapshot + replay. This is
        // the §3.1 state-saving bet restated for fault tolerance:
        // saved state (the snapshot) is only worth keeping because
        // re-deriving it from scratch costs a full replay.
        let rete = if self.tier.sequential_backed() {
            self.sequential
                .as_ref()
                .expect("sequential tier")
                .snapshot()
        } else {
            let (m, conflict, replayed) = self.rebuild_sequential();
            self.report.wal_replayed += replayed;
            debug_assert_eq!(conflict, self.conflict);
            m.snapshot()
        };
        self.checkpoint = Checkpoint {
            cycle: self.cycle,
            wm: self.shadow.snapshot_bytes(),
            rete,
            conflict: self.conflict_set(),
        };
        self.wal.clear();
        self.report.checkpoints += 1;
        self.count("fault.checkpoints");
        if let Some(store) = &self.replication {
            store.publish_checkpoint(&self.checkpoint);
        }
    }

    fn publish_gauges(&self) {
        if let Some(obs) = &self.obs {
            obs.metrics
                .gauge("fault.wal_entries")
                .set(self.wal.len() as i64);
            obs.metrics.gauge("fault.tier").set(self.tier as i64);
            obs.metrics
                .gauge("fault.conflict_size")
                .set(self.conflict.len() as i64);
            obs.metrics
                .gauge("fault.worker_respawns")
                .set(self.report().worker_respawns as i64);
        }
    }

    fn supervised_process(&mut self, wm: &WorkingMemory, changes: &[Change]) -> MatchDelta {
        if let Some(s) = &self.sanitizer {
            s.check_batch(wm, changes);
        }
        let cycle = self.cycle;
        self.cycle += 1;

        // Log the batch and sync the shadow's assertions (in id order,
        // so the shadow hands out the same handles the caller got).
        let mut entry = WalEntry {
            cycle,
            changes: Vec::with_capacity(changes.len()),
        };
        for &c in changes {
            entry.changes.push(match c {
                Change::Add(id) => {
                    let wme = wm
                        .get(id)
                        .expect("Add changes must be live in the working memory")
                        .clone();
                    WalChange::Add(wme, id)
                }
                Change::Remove(id) => WalChange::Remove(id),
            });
        }
        let mut adds: Vec<(WmeId, Wme)> = entry
            .changes
            .iter()
            .filter_map(|c| match c {
                WalChange::Add(w, id) => Some((*id, w.clone())),
                WalChange::Remove(_) => None,
            })
            .collect();
        adds.sort_by_key(|(id, _)| id.index());
        let batch_adds: HashSet<WmeId> = adds.iter().map(|(id, _)| *id).collect();
        for (id, wme) in adds {
            let (sid, _) = self.shadow.add(wme);
            assert_eq!(
                sid, id,
                "supervisor shadow out of sync: every working-memory \
                 mutation must flow through the supervisor"
            );
        }

        // Attempt loop: planned transient faults, engine faults, and
        // deadline misses all funnel through here.
        let planned_fails = self.plan.as_ref().map_or(0, |p| p.fails_for_cycle(cycle));
        let mut failed = 0u32;
        let mut deadline_degrade = false;
        let mut deadline_missed = false;
        let delta = loop {
            if failed < planned_fails && self.tier != Tier::Naive {
                // A planned transient fault burns this attempt.
                failed += 1;
                self.report.transient_faults += 1;
                self.count("fault.transient");
                if failed > self.config.max_retries {
                    self.degrade_one_tier(&batch_adds, cycle);
                } else {
                    self.report.retries += 1;
                    self.count("fault.retries");
                    // Exponential backoff with ±50% jitter, drawn from
                    // the plan-seeded RNG so equal plans sleep equally.
                    let factor = 1u32 << (failed - 1).min(3);
                    let jittered =
                        (self.config.backoff * factor).mul_f64(0.5 + self.jitter.gen_f64());
                    thread::sleep(jittered);
                }
                continue;
            }
            let started = Instant::now();
            match self.try_match(wm, changes) {
                Ok(delta) => {
                    if started.elapsed() > self.config.deadline {
                        self.report.deadline_misses += 1;
                        self.count("fault.deadline_misses");
                        deadline_missed = true;
                        // The delta is valid — keep it — but the tier
                        // missed its budget; leave the parallel engine
                        // after this batch commits.
                        deadline_degrade = self.tier == Tier::Parallel;
                    }
                    break delta;
                }
                Err(faults) => {
                    // The engine's state is suspect: discard the delta,
                    // recover from checkpoint + WAL, re-run the batch
                    // sequentially. Degradation is permanent.
                    self.report.engine_faults += faults;
                    self.count("fault.engine");
                    self.emit("fault.recovery", self.tier, cycle);
                    self.fall_back_to_sequential(true);
                }
            }
        };

        // Commit: conflict set, WAL, shadow retractions.
        apply_delta(&mut self.conflict, &delta);
        let removes: Vec<WmeId> = entry
            .changes
            .iter()
            .filter_map(|c| match c {
                WalChange::Remove(id) => Some(*id),
                WalChange::Add(..) => None,
            })
            .collect();
        if let Some(store) = &self.replication {
            store.publish_entry(&entry);
        }
        self.wal.push(entry);
        for id in removes {
            self.shadow.remove(id);
        }
        if deadline_degrade && self.tier == Tier::Parallel {
            self.emit("fault.fallback", Tier::Sequential, cycle);
            self.fall_back_to_sequential(false);
        }
        if (cycle + 1).is_multiple_of(self.config.checkpoint_every.max(1)) {
            self.take_checkpoint();
        }
        if let Some(obs) = &self.obs {
            // /healthz reads this: whether the most recent batch blew
            // its match deadline (1) or met it (0).
            obs.metrics
                .gauge("fault.last_cycle_deadline_miss")
                .set(i64::from(deadline_missed));
        }
        self.publish_gauges();
        delta
    }
}

impl Matcher for Supervisor {
    fn add_wme(&mut self, wm: &WorkingMemory, id: WmeId) -> MatchDelta {
        self.supervised_process(wm, &[Change::Add(id)])
    }

    fn remove_wme(&mut self, wm: &WorkingMemory, id: WmeId) -> MatchDelta {
        self.supervised_process(wm, &[Change::Remove(id)])
    }

    fn process(&mut self, wm: &WorkingMemory, changes: &[Change]) -> MatchDelta {
        self.supervised_process(wm, changes)
    }

    fn algorithm_name(&self) -> &'static str {
        "supervised-parallel-rete"
    }
}

/// Replays one WAL entry: re-assert the logged WMEs (asserting id
/// continuity), run the matcher with the original change order, then
/// retract — exactly the live protocol.
pub(crate) fn replay_entry<M: Matcher>(
    wm: &mut WorkingMemory,
    matcher: &mut M,
    entry: &WalEntry,
) -> MatchDelta {
    let mut adds: Vec<(WmeId, &Wme)> = entry
        .changes
        .iter()
        .filter_map(|c| match c {
            WalChange::Add(w, id) => Some((*id, w)),
            WalChange::Remove(_) => None,
        })
        .collect();
    adds.sort_by_key(|(id, _)| id.index());
    for (id, wme) in adds {
        let (rid, _) = wm.add(wme.clone());
        assert_eq!(rid, id, "WAL replay must reproduce original WME ids");
    }
    let changes: Vec<Change> = entry.changes.iter().map(|c| c.as_change()).collect();
    let delta = matcher.process(wm, &changes);
    for c in &entry.changes {
        if let WalChange::Remove(id) = c {
            wm.remove(*id);
        }
    }
    delta
}

/// Applies a delta to a conflict-set accumulator.
pub(crate) fn apply_delta(conflict: &mut HashSet<Instantiation>, delta: &MatchDelta) {
    for inst in &delta.removed {
        conflict.remove(inst);
    }
    for inst in &delta.added {
        conflict.insert(inst.clone());
    }
}
