//! Bounded, CRC-framed WAL segments with a manifest and coverage GC.
//!
//! The in-memory [`crate::Wal`] is truncated at every checkpoint, which
//! is right for local recovery but useless for replication: a standby
//! that missed a truncation can never catch up. This module keeps the
//! *shipped* form of the log instead — an append-only sequence of
//! [`WalSegment`]s, each bounded in size and independently decodable:
//!
//! * every segment starts with the `PSML` magic at **version 2** and
//!   its sequence number;
//! * every entry is framed as `[len u32][crc32 u32][payload]`, where
//!   the payload is the same [`WalEntry`] encoding `PSML` v1 uses;
//! * there is deliberately **no entry count** in the header, so a
//!   segment torn mid-write decodes to its longest valid frame prefix
//!   ([`WalSegment::from_bytes_lossy`]) instead of failing whole;
//! * a [`SegmentedWal`] rotates the open segment past a byte bound,
//!   reports a [`SegmentMeta`] manifest, and garbage-collects sealed
//!   segments once a checkpoint covers their last cycle.
//!
//! The CRC is plain IEEE CRC-32 ([`crc32`]), hand-rolled because the
//! workspace is zero-dependency.

use ops5::{ByteReader, ByteWriter, CodecError};

use crate::wal::{decode_entry, encode_entry, WalEntry};

const MAGIC: [u8; 4] = *b"PSML";
const VERSION: u32 = 2;
/// Magic + version + sequence number.
const HEADER_BYTES: usize = 4 + 4 + 8;
/// Length + CRC preceding every frame payload.
const FRAME_OVERHEAD: usize = 4 + 4;
/// Frames larger than this are treated as corruption, not allocation
/// requests.
const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// IEEE CRC-32 (reflected polynomial `0xEDB88320`), bitwise.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One bounded run of WAL entries, identified by a sequence number.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WalSegment {
    /// Position in the segment sequence (0-based, monotonic).
    pub seq: u64,
    /// Entries in append order.
    pub entries: Vec<WalEntry>,
}

/// What [`WalSegment::from_bytes_lossy`] salvaged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentOpenStats {
    /// Entries recovered (the longest valid frame prefix).
    pub recovered: usize,
    /// Trailing bytes dropped as a torn or corrupt tail (0 for a
    /// clean segment).
    pub truncated_bytes: usize,
}

impl WalSegment {
    /// An empty segment with the given sequence number.
    pub fn new(seq: u64) -> Self {
        WalSegment {
            seq,
            entries: Vec::new(),
        }
    }

    /// Serializes the segment: `PSML` v2 header, then one CRC frame
    /// per entry.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_header(MAGIC, VERSION);
        w.u64(self.seq);
        for entry in &self.entries {
            let mut payload = ByteWriter::new();
            encode_entry(&mut payload, entry);
            let payload = payload.finish();
            w.u32(payload.len() as u32);
            w.u32(crc32(&payload));
            for &b in &payload {
                w.u8(b);
            }
        }
        w.finish()
    }

    /// The serialized size of `entry` inside a segment, frame overhead
    /// included.
    pub fn framed_len(entry: &WalEntry) -> usize {
        let mut payload = ByteWriter::new();
        encode_entry(&mut payload, entry);
        FRAME_OVERHEAD + payload.len()
    }

    /// Decodes a segment, salvaging the longest valid frame prefix.
    ///
    /// A frame whose length field overruns the buffer, whose CRC does
    /// not match, or whose payload does not decode as a [`WalEntry`]
    /// ends the segment there: everything before it is returned,
    /// everything from it on is counted as `truncated_bytes`. This is
    /// the torn-tail contract — a partially shipped or
    /// partially written segment is usable up to its last complete
    /// frame and never panics.
    ///
    /// # Errors
    ///
    /// Only the header is load-bearing: a bad magic, version, or a
    /// buffer too short to hold the header returns [`CodecError`]
    /// (nothing is salvageable without knowing which segment this is).
    pub fn from_bytes_lossy(bytes: &[u8]) -> Result<(WalSegment, SegmentOpenStats), CodecError> {
        let (mut r, version) = ByteReader::with_header(bytes, MAGIC)?;
        if version != VERSION {
            return Err(CodecError::BadVersion {
                supported: VERSION,
                found: version,
            });
        }
        let seq = r.u64()?;
        let mut segment = WalSegment::new(seq);
        let mut consumed = HEADER_BYTES;
        loop {
            let tail = &bytes[consumed..];
            if tail.is_empty() {
                break;
            }
            if tail.len() < FRAME_OVERHEAD {
                break; // torn mid-frame-header
            }
            let len = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
            let crc = u32::from_le_bytes([tail[4], tail[5], tail[6], tail[7]]);
            if len > MAX_FRAME_BYTES || tail.len() < FRAME_OVERHEAD + len as usize {
                break; // torn mid-payload or corrupt length
            }
            let payload = &tail[FRAME_OVERHEAD..FRAME_OVERHEAD + len as usize];
            if crc32(payload) != crc {
                break; // corrupt payload or frame header
            }
            let mut pr = ByteReader::new(payload);
            let Ok(entry) = decode_entry(&mut pr) else {
                break; // CRC collided with garbage; still refuse it
            };
            if !pr.is_done() {
                break;
            }
            segment.entries.push(entry);
            consumed += FRAME_OVERHEAD + len as usize;
        }
        let stats = SegmentOpenStats {
            recovered: segment.entries.len(),
            truncated_bytes: bytes.len() - consumed,
        };
        Ok((segment, stats))
    }

    /// First logged cycle, if any.
    pub fn first_cycle(&self) -> Option<u64> {
        self.entries.first().map(|e| e.cycle)
    }

    /// Last logged cycle, if any.
    pub fn last_cycle(&self) -> Option<u64> {
        self.entries.last().map(|e| e.cycle)
    }
}

/// Manifest row describing one segment (sealed or open).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Segment sequence number.
    pub seq: u64,
    /// First cycle logged in the segment (`u64::MAX` when empty).
    pub first_cycle: u64,
    /// Last cycle logged in the segment (0 when empty).
    pub last_cycle: u64,
    /// Entries in the segment.
    pub entries: usize,
    /// Serialized size in bytes.
    pub bytes: usize,
    /// CRC-32 of the serialized segment.
    pub crc: u32,
    /// True while the segment is still the append target (its bytes
    /// may grow between two manifest reads).
    pub open: bool,
}

/// The shipped WAL: sealed segments plus one open append target.
///
/// Unlike [`crate::Wal`], nothing here is truncated at a checkpoint;
/// sealed segments are only dropped by [`SegmentedWal::gc_covered`]
/// once a checkpoint's cycle strictly exceeds their last cycle.
#[derive(Debug, Clone)]
pub struct SegmentedWal {
    max_segment_bytes: usize,
    sealed: Vec<(SegmentMeta, Vec<u8>)>,
    open: WalSegment,
    open_bytes: usize,
    gc_dropped: u64,
}

impl SegmentedWal {
    /// An empty log rotating segments past `max_segment_bytes` of
    /// encoded entries (header excluded; a single oversized entry
    /// still fits alone in its segment).
    pub fn new(max_segment_bytes: usize) -> Self {
        SegmentedWal {
            max_segment_bytes: max_segment_bytes.max(1),
            sealed: Vec::new(),
            open: WalSegment::new(0),
            open_bytes: 0,
            gc_dropped: 0,
        }
    }

    /// Appends one committed entry, rotating first if the open segment
    /// is already at its bound.
    pub fn append(&mut self, entry: &WalEntry) {
        if self.open_bytes >= self.max_segment_bytes && !self.open.entries.is_empty() {
            self.seal();
        }
        self.open_bytes += WalSegment::framed_len(entry);
        self.open.entries.push(entry.clone());
    }

    /// Seals the open segment (no-op when empty) and starts the next.
    pub fn seal(&mut self) {
        if self.open.entries.is_empty() {
            return;
        }
        let bytes = self.open.to_bytes();
        let meta = SegmentMeta {
            seq: self.open.seq,
            first_cycle: self.open.first_cycle().unwrap_or(u64::MAX),
            last_cycle: self.open.last_cycle().unwrap_or(0),
            entries: self.open.entries.len(),
            bytes: bytes.len(),
            crc: crc32(&bytes),
            open: false,
        };
        let next_seq = self.open.seq + 1;
        self.sealed.push((meta, bytes));
        self.open = WalSegment::new(next_seq);
        self.open_bytes = 0;
    }

    /// Drops sealed segments fully covered by a checkpoint at `cycle`
    /// (their `last_cycle < cycle`). Returns how many were dropped.
    pub fn gc_covered(&mut self, cycle: u64) -> usize {
        let before = self.sealed.len();
        self.sealed
            .retain(|(meta, _)| meta.entries == 0 || meta.last_cycle >= cycle);
        let dropped = before - self.sealed.len();
        self.gc_dropped += dropped as u64;
        dropped
    }

    /// Manifest rows for every live segment, sealed first, open last.
    pub fn manifest(&self) -> Vec<SegmentMeta> {
        let mut rows: Vec<SegmentMeta> = self.sealed.iter().map(|(m, _)| *m).collect();
        if !self.open.entries.is_empty() {
            let bytes = self.open.to_bytes();
            rows.push(SegmentMeta {
                seq: self.open.seq,
                first_cycle: self.open.first_cycle().unwrap_or(u64::MAX),
                last_cycle: self.open.last_cycle().unwrap_or(0),
                entries: self.open.entries.len(),
                bytes: bytes.len(),
                crc: crc32(&bytes),
                open: true,
            });
        }
        rows
    }

    /// Serialized bytes of segment `seq` (sealed bytes verbatim; the
    /// open segment is encoded at its current frontier).
    pub fn segment_bytes(&self, seq: u64) -> Option<Vec<u8>> {
        if let Some((_, bytes)) = self.sealed.iter().find(|(m, _)| m.seq == seq) {
            return Some(bytes.clone());
        }
        if seq == self.open.seq && !self.open.entries.is_empty() {
            return Some(self.open.to_bytes());
        }
        None
    }

    /// Total serialized bytes across live segments.
    pub fn total_bytes(&self) -> usize {
        self.sealed.iter().map(|(m, _)| m.bytes).sum::<usize>() + self.open_bytes
    }

    /// Segments dropped by GC over the log's lifetime.
    pub fn gc_dropped(&self) -> u64 {
        self.gc_dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::WalChange;
    use ops5::{SymbolTable, Value, Wme, WmeId};

    fn entry(cycle: u64, syms: &mut SymbolTable) -> WalEntry {
        let class = syms.intern("goal");
        let attr = syms.intern("n");
        let wme = Wme::new(class, vec![(attr, Value::Int(cycle as i64))]);
        WalEntry {
            cycle,
            changes: vec![
                WalChange::Add(wme, WmeId::from_index(cycle as usize)),
                WalChange::Remove(WmeId::from_index(cycle as usize)),
            ],
        }
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn segment_roundtrips_cleanly() {
        let mut syms = SymbolTable::new();
        let mut seg = WalSegment::new(7);
        for c in 0..5 {
            seg.entries.push(entry(c, &mut syms));
        }
        let bytes = seg.to_bytes();
        let (back, stats) = WalSegment::from_bytes_lossy(&bytes).expect("decodes");
        assert_eq!(back, seg);
        assert_eq!(stats.recovered, 5);
        assert_eq!(stats.truncated_bytes, 0);
        assert_eq!(back.first_cycle(), Some(0));
        assert_eq!(back.last_cycle(), Some(4));
    }

    #[test]
    fn torn_tail_truncates_to_last_complete_frame() {
        let mut syms = SymbolTable::new();
        let mut seg = WalSegment::new(0);
        for c in 0..4 {
            seg.entries.push(entry(c, &mut syms));
        }
        let bytes = seg.to_bytes();
        // Chop off the last 3 bytes: the final frame is torn.
        let torn = &bytes[..bytes.len() - 3];
        let (back, stats) = WalSegment::from_bytes_lossy(torn).expect("header intact");
        assert_eq!(back.entries, seg.entries[..3]);
        assert_eq!(stats.recovered, 3);
        assert!(stats.truncated_bytes > 0);
    }

    #[test]
    fn corrupt_frame_ends_the_prefix() {
        let mut syms = SymbolTable::new();
        let mut seg = WalSegment::new(0);
        for c in 0..4 {
            seg.entries.push(entry(c, &mut syms));
        }
        let mut bytes = seg.to_bytes();
        // Flip a byte inside the second frame's payload.
        let first_frame = FRAME_OVERHEAD + {
            let mut w = ByteWriter::new();
            encode_entry(&mut w, &seg.entries[0]);
            w.len()
        };
        let target = HEADER_BYTES + first_frame + FRAME_OVERHEAD + 2;
        bytes[target] ^= 0xFF;
        let (back, stats) = WalSegment::from_bytes_lossy(&bytes).expect("header intact");
        assert_eq!(back.entries, seg.entries[..1], "prefix before the flip");
        assert!(stats.truncated_bytes > 0);
    }

    #[test]
    fn bad_header_is_an_error() {
        let seg = WalSegment::new(0);
        let mut bytes = seg.to_bytes();
        bytes[0] = b'X';
        assert!(WalSegment::from_bytes_lossy(&bytes).is_err());
        assert!(WalSegment::from_bytes_lossy(&bytes[..6]).is_err());
    }

    #[test]
    fn rotation_manifest_and_gc() {
        let mut syms = SymbolTable::new();
        let mut wal = SegmentedWal::new(64); // tiny bound: ~1 entry per segment
        for c in 0..6 {
            wal.append(&entry(c, &mut syms));
        }
        let manifest = wal.manifest();
        assert!(manifest.len() > 1, "tiny bound forces rotation");
        let seqs: Vec<u64> = manifest.iter().map(|m| m.seq).collect();
        assert_eq!(seqs, (0..manifest.len() as u64).collect::<Vec<_>>());
        assert!(manifest.last().unwrap().open);
        assert_eq!(manifest.iter().map(|m| m.entries).sum::<usize>(), 6);

        // Every advertised segment decodes and matches its CRC.
        for m in &manifest {
            let bytes = wal.segment_bytes(m.seq).expect("advertised");
            assert_eq!(crc32(&bytes), m.crc);
            let (seg, stats) = WalSegment::from_bytes_lossy(&bytes).expect("decodes");
            assert_eq!(seg.entries.len(), m.entries);
            assert_eq!(stats.truncated_bytes, 0);
        }

        // A checkpoint at cycle 4 covers segments whose last cycle < 4.
        wal.seal();
        let dropped = wal.gc_covered(4);
        assert!(dropped >= 1);
        assert_eq!(dropped as u64, wal.gc_dropped());
        for m in wal.manifest() {
            assert!(m.last_cycle >= 4 || m.entries == 0);
        }
        assert!(wal.segment_bytes(0).is_none(), "covered segment dropped");
    }
}
