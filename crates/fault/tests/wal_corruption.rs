//! Property tests for the torn-tail contract of `PSML` v2 segments:
//! whatever bytes arrive — truncated, bit-flipped, or garbage — opening
//! a segment never panics, and anything salvaged is a byte-exact prefix
//! of the original entry sequence.

use ops5::{SymbolTable, Value, Wme, WmeId};
use psm_fault::wal::WalChange;
use psm_fault::{WalEntry, WalSegment};
use psm_obs::Rng64;

/// Magic + version + seq; corruption below this offset may reject the
/// whole segment, corruption at or above it must still salvage a
/// prefix.
const HEADER_BYTES: usize = 16;

fn build_segment(seed: u64, entries: usize) -> WalSegment {
    let mut rng = Rng64::new(seed);
    let mut syms = SymbolTable::new();
    let class = syms.intern("item");
    let attrs: Vec<_> = ["size", "kind", "owner"]
        .iter()
        .map(|a| syms.intern(a))
        .collect();
    let mut seg = WalSegment::new(seed);
    let mut next_id = 0usize;
    for cycle in 0..entries as u64 {
        let mut changes = Vec::new();
        for _ in 0..rng.gen_range(1..4u32) {
            let fields: Vec<_> = attrs
                .iter()
                .map(|&a| (a, Value::Int(rng.gen_range(0..1000u64) as i64)))
                .collect();
            changes.push(WalChange::Add(
                Wme::new(class, fields),
                WmeId::from_index(next_id),
            ));
            next_id += 1;
        }
        if rng.gen_bool(0.4) && next_id > 1 {
            changes.push(WalChange::Remove(WmeId::from_index(
                rng.gen_range(0..next_id as u64) as usize,
            )));
        }
        seg.entries.push(WalEntry { cycle, changes });
    }
    seg
}

/// The salvage invariant: decoding yields some prefix of the original
/// entries (possibly all of them, possibly none), and the open stats
/// account for every byte.
fn assert_salvaged_prefix(original: &WalSegment, bytes: &[u8]) {
    match WalSegment::from_bytes_lossy(bytes) {
        Ok((back, stats)) => {
            assert!(
                back.entries.len() <= original.entries.len(),
                "salvage cannot invent entries"
            );
            assert_eq!(
                back.entries[..],
                original.entries[..back.entries.len()],
                "salvaged entries are a byte-exact prefix"
            );
            assert_eq!(stats.recovered, back.entries.len());
            assert!(stats.truncated_bytes <= bytes.len());
        }
        Err(_) => {
            // Only header damage may reject the segment outright.
            assert!(
                bytes.len() < HEADER_BYTES || bytes[..8] != original.to_bytes()[..8],
                "an intact header must salvage, not error"
            );
        }
    }
}

#[test]
fn truncation_at_every_offset_salvages_a_prefix() {
    let seg = build_segment(1, 12);
    let bytes = seg.to_bytes();
    for cut in 0..=bytes.len() {
        assert_salvaged_prefix(&seg, &bytes[..cut]);
    }
    // A clean buffer salvages everything.
    let (back, stats) = WalSegment::from_bytes_lossy(&bytes).unwrap();
    assert_eq!(back, seg);
    assert_eq!(stats.truncated_bytes, 0);
}

#[test]
fn single_byte_flips_never_panic_and_never_forge_entries() {
    let seg = build_segment(2, 8);
    let clean = seg.to_bytes();
    let mut rng = Rng64::new(0xF11B);
    for _ in 0..400 {
        let mut bytes = clean.clone();
        let at = rng.gen_range(0..bytes.len() as u64) as usize;
        let bit = rng.gen_range(0..8u32);
        bytes[at] ^= 1 << bit;
        assert_salvaged_prefix(&seg, &bytes);
        if at >= HEADER_BYTES {
            // Body damage: the header survives, so decode must too.
            let (back, _) = WalSegment::from_bytes_lossy(&bytes).expect("header intact");
            assert!(back.entries.len() <= seg.entries.len());
        }
    }
}

#[test]
fn flip_plus_truncate_chaos_is_total() {
    let seg = build_segment(3, 10);
    let clean = seg.to_bytes();
    let mut rng = Rng64::new(0xC0FFEE);
    for _ in 0..300 {
        let mut bytes = clean.clone();
        for _ in 0..rng.gen_range(1..4u32) {
            let at = rng.gen_range(0..bytes.len() as u64) as usize;
            bytes[at] = bytes[at].wrapping_add(rng.gen_range(1..256u64) as u8);
        }
        let cut = rng.gen_range(0..=bytes.len() as u64) as usize;
        assert_salvaged_prefix(&seg, &bytes[..cut]);
    }
}

#[test]
fn appended_garbage_is_dropped_not_decoded() {
    let seg = build_segment(4, 6);
    let mut rng = Rng64::new(0xBAD);
    for _ in 0..100 {
        let mut bytes = seg.to_bytes();
        let junk = rng.gen_range(1..64u64) as usize;
        for _ in 0..junk {
            bytes.push(rng.gen_range(0..256u64) as u8);
        }
        let (back, stats) = WalSegment::from_bytes_lossy(&bytes).expect("header intact");
        // All original entries survive; the junk tail either dies at
        // its first bad frame or (CRC collision, ~2^-32) never here.
        assert_eq!(back.entries[..seg.entries.len()], seg.entries[..]);
        assert!(stats.truncated_bytes <= junk);
    }
}

#[test]
fn random_bytes_never_panic() {
    let mut rng = Rng64::new(0xD1CE);
    for _ in 0..500 {
        let len = rng.gen_range(0..200u64) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0..256u64) as u8).collect();
        let _ = WalSegment::from_bytes_lossy(&bytes); // must not panic
    }
}
