//! Quickstart: define rules, assert facts, run the recognize–act loop.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use psm::ops5::{parse_program, parse_wmes, Interpreter};
use psm::rete::ReteMatcher;

fn main() -> Result<(), psm::ops5::Error> {
    // Figure 2-1 of the paper, extended with a reporting rule.
    let program = parse_program(
        r#"
        (p find-colored-blk
           (goal ^type find-blk ^color <c>)
           (block ^id <i> ^color <c> ^selected no)
           -->
           (write selecting block <i>)
           (modify 2 ^selected yes))

        (p done
           (goal ^type find-blk)
           - (block ^selected no)
           -->
           (write all blocks considered)
           (halt))
        "#,
    )?;

    // Intern the initial facts into the same symbol table as the rules,
    // then hand both to the interpreter. The match algorithm is
    // pluggable; Rete is the paper's choice.
    let mut program = program;
    let initial = parse_wmes(
        r#"
        (goal ^type find-blk ^color red)
        (block ^id 1 ^color red ^selected no)
        (block ^id 2 ^color red ^selected no)
        (block ^id 3 ^color red ^selected no)
        "#,
        &mut program.symbols,
    )?;
    let matcher = ReteMatcher::compile(&program)?;
    let mut interp = Interpreter::new(program, matcher);
    interp.insert_all(initial);

    let fired = interp.run(100)?;
    for line in interp.output() {
        println!("{line}");
    }
    let stats = interp.stats();
    println!(
        "\n{fired} rule firings, {} working-memory changes, conflict-set peak {}",
        stats.wme_changes, stats.conflict_set_peak
    );
    let match_stats = interp.matcher().stats();
    println!(
        "match work: {} node activations, {} join tests",
        match_stats.node_activations(),
        match_stats.join_tests
    );
    Ok(())
}
