//! Rule-based single-source shortest paths: a three-rule Bellman-Ford
//! that relaxes `wave` facts to quiescence. Shows negated condition
//! elements, predicate join tests, and `compute` cooperating on a real
//! algorithm.
//!
//! ```sh
//! cargo run --example shortest_paths
//! ```

use psm::ops5::{Interpreter, Value};
use psm::rete::ReteMatcher;
use psm::workloads::programs;

fn main() -> Result<(), psm::ops5::Error> {
    // A 6x6 four-connected grid with an L-shaped wall.
    let w = 6i64;
    let blocked = [8i64, 14, 20, 21, 22];
    let mut edges = Vec::new();
    for r in 0..w {
        for c in 0..w {
            let id = r * w + c;
            if blocked.contains(&id) {
                continue;
            }
            for (dr, dc) in [(0i64, 1i64), (1, 0), (0, -1), (-1, 0)] {
                let (nr, nc) = (r + dr, c + dc);
                if (0..w).contains(&nr) && (0..w).contains(&nc) {
                    let nid = nr * w + nc;
                    if !blocked.contains(&nid) {
                        edges.push((id, nid));
                    }
                }
            }
        }
    }

    let (program, wmes) = programs::shortest_paths(&edges, 0)?;
    let matcher = ReteMatcher::compile(&program)?;
    let mut interp = Interpreter::new(program, matcher);
    interp.insert_all(wmes);
    let fired = interp.run(100_000)?;

    let wave = interp.program().symbols.lookup("wave").expect("interned");
    let cell = interp.program().symbols.lookup("cell").expect("interned");
    let d = interp.program().symbols.lookup("d").expect("interned");
    let dist: std::collections::HashMap<i64, i64> = interp
        .working_memory()
        .by_class(wave)
        .map(|(_, wme)| match (wme.get(cell), wme.get(d)) {
            (Some(Value::Int(c)), Some(Value::Int(dd))) => (c, dd),
            _ => unreachable!("wave facts carry integers"),
        })
        .collect();

    println!("distances from the top-left corner ({fired} rule firings):\n");
    for r in 0..w {
        let row: Vec<String> = (0..w)
            .map(|c| {
                let id = r * w + c;
                if blocked.contains(&id) {
                    "##".into()
                } else {
                    dist.get(&id).map_or("..".into(), |v| format!("{v:2}"))
                }
            })
            .collect();
        println!("  {}", row.join(" "));
    }
    Ok(())
}
