//! Rule-based bubble sort: the conflict-resolution loop repeatedly fires
//! a single swap rule until no adjacent inversion remains. Shows
//! `modify` actions, predicate join tests (`< <v>`), and quiescence as
//! the termination condition.
//!
//! ```sh
//! cargo run --example rule_sort
//! ```

use psm::ops5::{Interpreter, Value};
use psm::rete::ReteMatcher;
use psm::workloads::programs;

fn main() -> Result<(), psm::ops5::Error> {
    let values = [9, 3, 7, 1, 8, 2, 6, 4, 5, 0];
    let (program, initial) = programs::rule_sort(&values)?;
    let matcher = ReteMatcher::compile(&program)?;
    let mut interp = Interpreter::new(program, matcher);
    interp.insert_all(initial);

    let fired = interp.run(10_000)?;

    let item = interp.program().symbols.lookup("item").expect("interned");
    let pos = interp.program().symbols.lookup("pos").expect("interned");
    let val = interp.program().symbols.lookup("val").expect("interned");
    let mut out: Vec<(i64, i64)> = interp
        .working_memory()
        .iter()
        .filter(|(_, w, _)| w.class() == item)
        .map(|(_, w, _)| match (w.get(pos), w.get(val)) {
            (Some(Value::Int(p)), Some(Value::Int(v))) => (p, v),
            _ => unreachable!("items carry integers"),
        })
        .collect();
    out.sort_unstable();
    let sorted: Vec<i64> = out.into_iter().map(|(_, v)| v).collect();

    println!("input:  {values:?}");
    println!("sorted: {sorted:?}  ({fired} swap firings)");
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    Ok(())
}
