//! A command-line OPS5 runner: load a production file and an initial
//! working memory, run to quiescence/halt, and print the trace — the
//! tool a downstream user reaches for first.
//!
//! ```sh
//! cargo run --example run_ops -- assets/blocks.ops assets/blocks.wm
//! cargo run --example run_ops -- assets/blocks.ops assets/blocks.wm --mea --stats
//! ```

use std::process::ExitCode;

use psm::ops5::{parse_program, parse_wmes, Interpreter, Strategy};
use psm::rete::ReteMatcher;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let (Some(program_path), Some(wm_path)) = (files.first(), files.get(1)) else {
        eprintln!(
            "usage: run_ops <program.ops> <initial.wm> [--mea] [--stats] [--watch] [--limit N]"
        );
        return ExitCode::FAILURE;
    };
    let limit: u64 = args
        .iter()
        .position(|a| a == "--limit")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);

    let run = || -> Result<(), Box<dyn std::error::Error>> {
        let src = std::fs::read_to_string(program_path)?;
        let mut program = parse_program(&src)?;
        let wm_src = std::fs::read_to_string(wm_path)?;
        let initial = parse_wmes(&wm_src, &mut program.symbols)?;

        let matcher = ReteMatcher::compile(&program)?;
        let mut interp = Interpreter::new(program, matcher);
        if args.iter().any(|a| a == "--mea") {
            interp.set_strategy(Strategy::Mea);
        }
        let watch = args.iter().any(|a| a == "--watch");
        if watch {
            interp.enable_firing_log();
        }
        interp.insert_all(initial);
        let fired = interp.run(limit)?;

        if watch {
            for (i, inst) in interp.firing_log().iter().enumerate() {
                let name = &interp.program().production(inst.production).name;
                eprintln!(
                    "{:>4}. {name} {}",
                    i + 1,
                    inst.display(&interp.program().symbols)
                );
            }
        }
        for line in interp.output() {
            println!("{line}");
        }
        eprintln!("\n{fired} firings; final working memory:");
        for (_, wme, tag) in interp.working_memory().iter() {
            eprintln!("  {tag}: {}", wme.display(&interp.program().symbols));
        }
        if args.iter().any(|a| a == "--stats") {
            let s = interp.matcher().stats();
            eprintln!(
                "match stats: {} changes, {} node activations, {} join tests, peak {} tokens",
                s.changes,
                s.node_activations(),
                s.join_tests,
                s.peak_tokens
            );
        }
        Ok(())
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
