//! Transitive closure as a production system: `reach` facts are derived
//! until quiescence, with a negated condition element providing
//! termination. A classic Rete-friendly workload — every new fact
//! triggers incremental rematch of only the affected rules.
//!
//! ```sh
//! cargo run --example transitive_closure
//! ```

use psm::ops5::{Interpreter, Value};
use psm::rete::ReteMatcher;
use psm::workloads::programs;

fn main() -> Result<(), psm::ops5::Error> {
    // A ring of 6 nodes plus two chords.
    let edges: Vec<(i64, i64)> = (0..6)
        .map(|i| (i, (i + 1) % 6))
        .chain([(0, 3), (2, 5)])
        .collect();
    let (program, initial) = programs::transitive_closure(&edges)?;
    let matcher = ReteMatcher::compile(&program)?;
    let mut interp = Interpreter::new(program, matcher);
    interp.insert_all(initial);

    let fired = interp.run(10_000)?;
    let reach = interp.program().symbols.lookup("reach").expect("interned");
    let from = interp.program().symbols.lookup("from").expect("interned");
    let to = interp.program().symbols.lookup("to").expect("interned");

    let mut pairs: Vec<(i64, i64)> = interp
        .working_memory()
        .by_class(reach)
        .map(|(_, w)| match (w.get(from), w.get(to)) {
            (Some(Value::Int(a)), Some(Value::Int(b))) => (a, b),
            _ => unreachable!("reach facts carry integers"),
        })
        .collect();
    pairs.sort_unstable();

    println!(
        "{} edges -> {} reach facts in {fired} firings",
        edges.len(),
        pairs.len()
    );
    // The ring makes every node reach every node (including itself).
    assert_eq!(pairs.len(), 36);
    let stats = interp.matcher().stats();
    println!(
        "rete processed {} changes with {} node activations ({}
         activations/change — incremental, not quadratic recompute)",
        stats.changes,
        stats.node_activations(),
        stats.node_activations() / stats.changes.max(1)
    );
    Ok(())
}
