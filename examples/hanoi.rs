//! Towers of Hanoi under MEA conflict resolution: the recency of the
//! goal in the *first* condition element makes the conflict set behave
//! as a goal stack, and `(compute …)` does the disk arithmetic — the two
//! OPS5 features that powered planning-style systems like R1.
//!
//! ```sh
//! cargo run --example hanoi
//! ```

use psm::ops5::{Interpreter, Strategy};
use psm::rete::ReteMatcher;
use psm::workloads::programs;

fn main() -> Result<(), psm::ops5::Error> {
    let disks = 4;
    let (program, initial) = programs::hanoi(disks)?;
    let matcher = ReteMatcher::compile(&program)?;
    let mut interp = Interpreter::new(program, matcher);
    interp.set_strategy(Strategy::Mea); // goal-stack behaviour
    interp.insert_all(initial);

    let fired = interp.run(100_000)?;
    for line in interp.output() {
        println!("{line}");
    }
    println!(
        "\n{} moves for {disks} disks in {fired} rule firings (optimal: {})",
        interp.output().len(),
        (1u64 << disks) - 1
    );
    assert_eq!(interp.output().len() as u64, (1u64 << disks) - 1);
    Ok(())
}
