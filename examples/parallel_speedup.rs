//! Runs the same workload through the sequential Rete, the
//! node-activation-parallel engine, and the production-parallel engine,
//! reporting wall-clock match times (the paper's VAX-11/784 experiment,
//! on whatever cores this machine has).
//!
//! ```sh
//! cargo run --release --example parallel_speedup
//! ```

use psm::core::{ParallelOptions, ParallelReteMatcher, ProductionParallelMatcher};
use psm::ops5::Matcher;
use psm::rete::ReteMatcher;
use psm::workloads::{GeneratedWorkload, Preset, WorkloadDriver};

fn time_matcher<M: Matcher>(workload: &GeneratedWorkload, matcher: &mut M, cycles: u64) -> f64 {
    let mut driver = WorkloadDriver::new(workload.clone(), 42);
    driver.init(matcher);
    driver.run_cycles(matcher, cycles).match_time.as_secs_f64()
}

fn main() -> Result<(), psm::ops5::Error> {
    let cycles = 150;
    let workload = GeneratedWorkload::generate(Preset::Daa.spec_small())?;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "workload: {}  ({} cores available)",
        workload.spec.name, cores
    );

    let mut seq = ReteMatcher::compile(&workload.program)?;
    let t_seq = time_matcher(&workload, &mut seq, cycles);
    println!(
        "sequential rete:          {:8.2} ms  (baseline)",
        t_seq * 1e3
    );

    for threads in [1, 2, cores.max(2)] {
        let mut par = ParallelReteMatcher::compile(
            &workload.program,
            ParallelOptions {
                threads,
                share: true,
            },
        )?;
        let t = time_matcher(&workload, &mut par, cycles);
        println!(
            "node-parallel ({threads} threads): {:8.2} ms  (speedup {:.2}x)",
            t * 1e3,
            t_seq / t
        );
    }

    let mut pp = ProductionParallelMatcher::compile(&workload.program, cores.max(2))?;
    let t = time_matcher(&workload, &mut pp, cycles);
    println!(
        "production-parallel:      {:8.2} ms  (speedup {:.2}x, imbalance {:.2})",
        t * 1e3,
        t_seq / t,
        pp.imbalance()
    );
    println!(
        "\nNote: with ~50-100-instruction tasks, software scheduling overhead eats much of\n\
         the gain — exactly the paper's argument for a hardware task scheduler (§5)."
    );
    Ok(())
}
