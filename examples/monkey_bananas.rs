//! The classic monkey-and-bananas planning problem, solved by four OPS5
//! rules firing in sequence under LEX conflict resolution.
//!
//! ```sh
//! cargo run --example monkey_bananas
//! ```

use psm::ops5::Interpreter;
use psm::rete::ReteMatcher;
use psm::workloads::programs;

fn main() -> Result<(), psm::ops5::Error> {
    let (program, initial) = programs::monkey_bananas()?;
    let matcher = ReteMatcher::compile(&program)?;
    let mut interp = Interpreter::new(program, matcher);
    interp.insert_all(initial);

    let fired = interp.run(50)?;
    println!("plan executed in {fired} rule firings:");
    for line in interp.output() {
        println!("  {line}");
    }
    assert_eq!(
        interp.output().last().map(String::as_str),
        Some("monkey grabs bananas"),
        "the plan must succeed"
    );
    Ok(())
}
