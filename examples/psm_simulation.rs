//! Capture a node-activation trace from a real Rete run and replay it on
//! the simulated Production System Machine at several processor counts —
//! a miniature of Figures 6-1 and 6-2.
//!
//! ```sh
//! cargo run --release --example psm_simulation
//! ```

use psm::sim::{simulate_psm, CostModel, PsmSpec};
use psm::workloads::{capture_trace, GeneratedWorkload, Preset};

fn main() -> Result<(), psm::ops5::Error> {
    let workload = GeneratedWorkload::generate(Preset::EpSoar.spec())?;
    let (trace, stats) = capture_trace(&workload, 150, 7)?;
    let cost = CostModel::default();

    println!(
        "trace: {} cycles, {} changes, {} activations, {:.0} instr/change",
        trace.cycles.len(),
        trace.total_changes(),
        trace.total_activations(),
        cost.mean_change_cost(&trace),
    );
    println!(
        "affected productions/change: {:.1}   (match stats: {} node activations)",
        trace.mean_affected_productions(),
        stats.node_activations(),
    );

    println!("\n  P  concurrency  true-speedup  wme-ch/s  lost-factor");
    for p in [1, 2, 4, 8, 16, 32, 64] {
        let r = simulate_psm(&trace, &cost, &PsmSpec::paper_32().with_processors(p));
        println!(
            "{p:>3}  {:>11.2}  {:>12.2}  {:>8.0}  {:>11.2}",
            r.concurrency,
            r.true_speedup,
            r.wme_changes_per_sec,
            r.lost_factor()
        );
    }
    println!("\npaper: ~16 processors busy at P=32, true speed-up < 10-fold, ~9400 wme-changes/s.");
    Ok(())
}
